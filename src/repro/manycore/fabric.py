"""The manycore fabric: tiles + NoC + LLC banks + DRAM + the event loop.

Simulation is cycle-stepped but event-assisted: tiles report the next cycle
at which they can make progress, memory completions are scheduled on an
event heap, and the clock jumps straight to the earliest interesting time.
This keeps pure-Python simulation fast through long memory stalls while
preserving cycle-granular interleaving where it matters.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence

from ..core.vgroup import (GroupDescriptor, ROLE_EXPANDER, ROLE_SCALAR,
                           ROLE_VECTOR)
from ..isa.assembler import Program
from .config import DEFAULT_CONFIG, MachineConfig
from .dram import Dram
from .llc import KIND_STORE, KIND_WIDE, LLCBank, MemRequest
from .noc import NocModel
from .stats import RunStats
from .tile import INF, RUN, Tile, WAIT_BARRIER

_MAX_DEFAULT = 200_000_000

# adaptive-scheduler hysteresis: consecutive sparse (due ≤ active/8)
# iterations before switching the run loop to the wake heap, and
# consecutive dense (due ≥ active/4) iterations before falling back to
# the active-list scan
_SCHED_TO_HEAP = 24
_SCHED_TO_SCAN = 4

# FabricJob lifecycle states
JOB_RUNNING = 'running'
JOB_DRAINING = 'draining'  # tiles halted/killed, memory ops still in flight
JOB_DONE = 'done'
JOB_KILLED = 'killed'


class DeadlockError(Exception):
    """No tile can make progress and no events are pending."""


class SimulationTimeout(Exception):
    """The run exceeded its cycle budget."""


class FabricJob:
    """One program's lifecycle on a subset of a live fabric's tiles.

    The classic flow (``load_program`` + ``run``) is the degenerate case of
    one job owning every core with a fabric-global barrier; a job scopes
    barriers, the memory fence, halt detection, and stats attribution to
    its own tiles so several kernels can share the fabric.  ``pending_ops``
    counts in-flight memory operations issued by the job's tiles; the job's
    tiles (and its mesh region) must not be reused until it drains to zero,
    or late completions would corrupt the successor's state.
    """

    __slots__ = ('job_id', 'name', 'tiles', 'core_ids', 'program', 'state',
                 'pending_ops', 'fence_waiting', 'launched_at',
                 'finished_at', 'on_complete', '_drain_kind', 'rid',
                 'rtrace')

    def __init__(self, job_id: int, name: str, tiles: List[Tile],
                 program: Program, on_complete: Optional[Callable] = None):
        self.job_id = job_id
        self.name = name
        self.tiles = tiles
        self.core_ids = [t.core_id for t in tiles]
        self.program = program
        self.state = JOB_RUNNING
        self.pending_ops = 0
        self.fence_waiting = False
        self.launched_at = 0
        self.finished_at: Optional[int] = None
        self.on_complete = on_complete
        self._drain_kind = JOB_DONE  # final state once pending ops land
        self.rid: Optional[int] = None  # serving request id, if any
        self.rtrace = None  # per-request causal trace (repro.observe)

    @property
    def finished(self) -> bool:
        return self.state in (JOB_DONE, JOB_KILLED)

    def __repr__(self):
        return (f'<FabricJob {self.job_id} {self.name!r} {self.state} '
                f'cores={self.core_ids[0]}..{self.core_ids[-1]} '
                f'pending={self.pending_ops}>')


class Fabric:
    """A W x H tiled machine with shared LLC banks and DRAM."""

    def __init__(self, cfg: MachineConfig = DEFAULT_CONFIG):
        self.cfg = cfg
        self.run_stats = RunStats()
        self.noc = NocModel(cfg.mesh_width, cfg.mesh_height, cfg.llc_banks,
                            cfg.router_hop_latency)
        self.dram = Dram(cfg.dram_latency,
                         cfg.dram_bandwidth_words_per_cycle,
                         cfg.line_words, self.run_stats.mem)
        self.banks = [LLCBank(b, self, cfg, self.run_stats.mem)
                      for b in range(cfg.llc_banks)]
        self.tiles = [Tile(i, self, cfg) for i in range(cfg.num_cores)]
        self.run_stats.cores = {t.core_id: t.stats for t in self.tiles}

        self.memory: List = []
        self._alloc_ptr = 0
        self.cycle = 0
        self._heap: list = []
        self._seq = 0
        self._pending_events: set = set()  # seqs of live (uncancelled) events
        # same-cycle scratchpad delivery batches: arrival time -> list of
        # (core, offset, values, is_frame), drained by one posted event
        self._delivery_batches: Dict[int, list] = {}
        # tile wake-time heap: entries (time, order, entry_id, tile);
        # a tile's latest entry_id (tile._wake_entry) is the only live
        # one, so lowering next_wake just pushes a fresh entry and the
        # stale one is discarded lazily when it surfaces
        self._wake_heap: list = []
        self._wake_counter = 0
        self._wake_epoch = 0
        self._sched_heap_mode = False
        self.group_descs: Dict[int, GroupDescriptor] = {}
        self.num_groups = 0
        self._active: List[Tile] = []
        self._active_dirty = False
        self.jobs: List[FabricJob] = []
        self._next_job_id = 0
        #: serve-mode hook: called with the current cycle when no tile can
        #: progress and no events are pending; return True after freeing a
        #: wedged job to keep the fabric alive instead of raising
        self._stall_handler: Optional[Callable[[int], bool]] = None
        #: (request_id, job, trace_id, start, end, {core: group_id}) spans
        #: recorded by the serving scheduler for Perfetto track annotation;
        #: the trace_id links these in-fabric windows to the fleet-level
        #: distributed trace (repro.flight)
        self.serve_spans: List[dict] = []
        self.trace = None  # optional Tracer (see manycore.trace)
        self.telemetry = None  # optional Telemetry (see repro.telemetry)
        self.observe = None  # optional ObservePlane (see repro.observe)
        self.profiler = None  # optional HostProfiler (see repro.perf)

    # ------------------------------------------------------------- memory setup
    def alloc(self, data_or_size, fill=0.0) -> int:
        """Allocate a line-aligned global array; returns its word address.

        Line 0 is reserved as a guard so that one-word-shifted (unaligned)
        stencil loads never index below zero.
        """
        lw = self.cfg.line_words
        base = ((max(len(self.memory), lw) + lw - 1) // lw) * lw
        if isinstance(data_or_size, int):
            values = [fill] * data_or_size
        else:
            values = [float(v) for v in data_or_size]
        self.memory.extend([0.0] * (base - len(self.memory)))
        self.memory.extend(values)
        # pad to a line boundary plus one trailing guard line, so shifted
        # (unaligned) loads one word past an array stay in bounds
        pad = (lw - len(self.memory) % lw) % lw + lw
        self.memory.extend([0.0] * pad)
        return base

    def read_array(self, base: int, n: int) -> List:
        return self.memory[base:base + n]

    # ------------------------------------------------------------- group setup
    def register_group(self, desc: GroupDescriptor) -> int:
        """Register a vector-group descriptor; returns its vconfig handle."""
        handle = len(self.group_descs)
        self.group_descs[handle] = desc
        self.num_groups = len(self.group_descs)
        return handle

    # ----------------------------------------------------------------- events
    def post(self, time: int, fn) -> int:
        """Schedule ``fn(now)``; returns a token usable with :meth:`cancel`."""
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._pending_events.add(self._seq)
        return self._seq

    def cancel(self, token: int) -> bool:
        """Cancel a posted event; harmless if it already fired."""
        if token in self._pending_events:
            self._pending_events.discard(token)
            return True
        return False

    def _peek_live(self) -> Optional[int]:
        """Time of the earliest live event, discarding cancelled heads."""
        heap = self._heap
        pending = self._pending_events
        while heap and heap[0][1] not in pending:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def wake_tile(self, tile: Tile, time: int) -> None:
        t = max(time, self.cycle)
        if t < tile.next_wake:
            tile.next_wake = t
            if self._sched_heap_mode:
                self._wake_counter = c = self._wake_counter + 1
                tile._wake_entry = c
                heapq.heappush(self._wake_heap, (t, tile._order, c, tile))

    def _rebuild_wake_heap(self, active: Sequence[Tile]) -> None:
        """(Re)build the wake heap from the authoritative ``next_wake``s.

        Assigns each active tile its position in the list (``_order``,
        the tuple key that preserves the historical same-cycle step
        order) and stamps the rebuild epoch: entries pushed for a tile
        that joined *after* the last rebuild (mid-iteration job launch)
        are ignored until the next rebuild, exactly as the original
        loop's stale ``active`` snapshot ignored such tiles.
        """
        self._wake_epoch += 1
        epoch = self._wake_epoch
        wheap = self._wake_heap
        del wheap[:]
        c = self._wake_counter
        for i, t in enumerate(active):
            t._order = i
            t._wake_epoch = epoch
            c += 1
            t._wake_entry = c
            if t.next_wake < INF:
                # INF waiters carry no entry: they only progress via
                # wake_tile, which pushes one when it lowers next_wake
                wheap.append((t.next_wake, i, c, t))
        self._wake_counter = c
        heapq.heapify(wheap)

    def count_hops(self, word_hops: int) -> None:
        self.run_stats.noc_word_hops += word_hops

    # ------------------------------------------------------------ memory traffic
    def send_to_bank(self, req: MemRequest, now: int) -> None:
        job = self.tiles[req.core].job
        if job is not None:
            req.job = job
            job.pending_ops += 1
        bank_id = (req.addr // self.cfg.line_words) % self.cfg.llc_banks
        hops = self.noc.bank_hops(req.core, bank_id)
        self.count_hops(hops)
        delay = self.noc.bank_delay(req.core, bank_id)
        # wide requests are covered by the drain-time NoC derivation
        # from the wide-access record (see Telemetry._drain_events)
        if self.telemetry is not None and req.kind != KIND_WIDE:
            self.telemetry.on_noc_traversal(delay)
        obs = self.observe
        if obs is not None:
            obs.on_mem_req(req)  # routes/banks derived at drain time
        self.banks[bank_id].access(req, now + delay)

    def send_store(self, core: int, addr: int, value, now: int) -> None:
        req = MemRequest(KIND_STORE, addr, 1, core, value=value)
        self.send_to_bank(req, now)

    def send_remote_store(self, src: int, dest: int, offset: int, value,
                          now: int) -> None:
        delay = self.noc.core_delay(src, dest)
        self.count_hops(delay - 1)
        job = self.tiles[src].job
        if job is not None:
            job.pending_ops += 1
        obs = self.observe
        if obs is not None:
            obs.on_remote_store((src, dest))

        def deliver(at, d=dest, o=offset, v=value, j=job):
            self.spad_deliver(d, o, [v], False)
            if j is not None:
                self.job_op_done(j, at)

        self.post(now + delay, deliver)

    def post_spad_delivery(self, time: int, core: int, offset: int,
                           values: Sequence, is_frame: bool) -> None:
        """Schedule a scratchpad delivery, coalescing same-cycle packets.

        A wide LLC response emits one packet per NoC-width chunk, and on
        frame-heavy kernels many packets land on the same cycle; one
        heap event per packet is measurable host overhead.  Packets for
        the same arrival cycle share a single posted event and drain in
        append (= post) order, so sim-visible behaviour is unchanged:
        the run loop fires every event due at a cycle before any tile
        steps, deliveries are never cancelled, and the batch's event is
        created when its first packet is posted — before the owning
        request's ``job_op_done`` for that cycle.
        """
        batch = self._delivery_batches.get(time)
        if batch is None:
            self._delivery_batches[time] = batch = []

            def fire(now, w=time):
                for core, offset, values, is_frame in \
                        self._delivery_batches.pop(w):
                    self.spad_deliver(core, offset, values, is_frame)

            self.post(time, fire)
        batch.append((core, offset, values, is_frame))

    def spad_deliver(self, core: int, offset: int, values: Sequence,
                     is_frame: bool) -> None:
        tile = self.tiles[core]
        tile.spad.deliver(offset, values, is_frame)
        if is_frame:
            if self.telemetry is not None:
                self.telemetry.on_frame_words(
                    (core, offset, len(values), self.cycle))
            obs = self.observe
            if obs is not None:
                obs.on_frame_words((core, len(values)))
            job = tile.job
            if job is not None and job.rtrace is not None:
                job.rtrace.frame_words += len(values)
        self.wake_tile(tile, self.cycle)

    # --------------------------------------------------------------- formation
    def vconfig_arrive(self, tile: Tile, handle: int, now: int) -> None:
        desc = self.group_descs.get(handle)
        if desc is None:
            raise DeadlockError(f'vconfig with unknown handle {handle}')
        if tile.core_id not in desc.tiles:
            raise DeadlockError(
                f'core {tile.core_id} ran vconfig for group '
                f'{desc.group_id} it does not belong to')
        from .tile import WAIT_VCONFIG
        tile.state = WAIT_VCONFIG
        job = tile.job
        if job is not None and job.rtrace is not None \
                and tile is job.tiles[0]:
            # the job's lead tile begins a formation wait; these cycles
            # are the request's "launch" phase (they land in idle() and
            # in no stall bucket, so the carve-out is exact)
            job.rtrace.lead_wait_begin(now)
        desc._arrived.add(tile.core_id)
        if len(desc._arrived) == len(desc.tiles):
            desc._arrived.clear()
            self._form_group(desc, now)

    def _form_group(self, desc: GroupDescriptor, now: int) -> None:
        for i, cid in enumerate(desc.tiles):
            t = self.tiles[cid]
            t.group = desc
            if i == 0:
                t.mode = ROLE_SCALAR
                t.lane_idx = -1
            elif i == 1:
                t.mode = ROLE_EXPANDER
                t.lane_idx = 0
            else:
                t.mode = ROLE_VECTOR
                t.lane_idx = i - 1
            nxt = desc.successor(cid)
            t.successor = self.tiles[nxt] if nxt != -1 else None
            t.group_id_csr = desc.group_id
            t.ngroups_csr = (desc.total_groups if desc.total_groups
                             is not None else self.num_groups)
            t.state = RUN
            t.in_mt = False
            t.pred = True
            t._ready_at = now + 1
            self.wake_tile(t, now + 1)
            job = t.job
            if job is not None and job.rtrace is not None \
                    and t is job.tiles[0]:
                job.rtrace.lead_wait_end(now)

    # ----------------------------------------------------------------- barrier
    def barrier_arrive(self, tile: Tile, now: int) -> None:
        tile.state = WAIT_BARRIER
        if tile.job is not None:
            self._check_job_barrier(tile.job, now)
        else:
            self._check_barrier(now)

    def on_halt(self, tile: Tile, now: int) -> None:
        self._active_dirty = True
        tile.next_wake = INF
        if tile.job is not None:
            self._check_job_halt(tile.job, now)
        else:
            self._check_barrier(now)

    def _check_barrier(self, now: int) -> None:
        waiting = [t for t in self._active if not t.halted]
        if not waiting:
            return
        if not all(t.state == WAIT_BARRIER for t in waiting):
            return
        # The barrier is also a memory fence: in-flight non-blocking stores
        # and fills must land before dependent kernels start (the paper's
        # kernels are separated by a global barrier, Section 6.1).
        if self._pending_events:
            recheck = max(t for t, s, _ in self._heap
                          if s in self._pending_events) + 1
            self.post(recheck, self._check_barrier)
            return
        for t in waiting:
            t.state = RUN
            t._ready_at = now + 1
            self.wake_tile(t, now + 1)

    # ------------------------------------------------------------ job lifecycle
    def launch_job(self, name: str, program: Program,
                   core_ids: Sequence[int],
                   on_complete: Optional[Callable] = None) -> FabricJob:
        """Start ``program`` on ``core_ids`` while the fabric keeps running.

        Ranks (thread id / ncores CSRs) are the positions in ``core_ids``,
        so a job sees the same SPMD shape regardless of where its region
        sits on the mesh.  ``on_complete(job, now)`` fires once every tile
        halted (or the job was killed) *and* its in-flight memory
        operations drained — only then is it safe to reuse the tiles.
        """
        now = self.cycle
        tiles = []
        for cid in core_ids:
            t = self.tiles[cid]
            if t.job is not None and not t.job.finished:
                raise ValueError(f'core {cid} still owned by {t.job!r}')
            tiles.append(t)
        job = FabricJob(self._next_job_id, name, tiles, program, on_complete)
        self._next_job_id += 1
        job.launched_at = now
        for rank, t in enumerate(tiles):
            t.reset_for_job(program, 0, rank, len(tiles), job, now)
            if t not in self._active:
                self._active.append(t)
        self._active_dirty = True
        self.jobs.append(job)
        return job

    def kill_job(self, job: FabricJob, now: int) -> None:
        """Forcibly halt a job's tiles (timeout / wedged group).

        The job moves to ``draining`` until its in-flight memory operations
        land, then ``killed``; ``on_complete`` fires at that point.  Killed
        tiles keep their architectural junk — ``reset_for_job`` scrubs it
        when the region is reused.
        """
        if job.finished or job.state == JOB_DRAINING:
            return
        from .tile import HALTED
        for t in job.tiles:
            if t.group is not None:
                t.group._arrived.discard(t.core_id)
            t.halted = True
            t.state = HALTED
            t.next_wake = INF
        self._active_dirty = True
        if job.pending_ops:
            job.state = JOB_DRAINING
            job._drain_kind = JOB_KILLED
        else:
            self._finish_job(job, now, JOB_KILLED)

    def job_op_done(self, job: FabricJob, now: int) -> None:
        """One of the job's in-flight memory operations completed."""
        job.pending_ops -= 1
        if job.pending_ops:
            return
        if job.fence_waiting:
            job.fence_waiting = False
            self._check_job_barrier(job, now)
        if job.state == JOB_DRAINING:
            self._finish_job(job, now, job._drain_kind)

    def _check_job_barrier(self, job: FabricJob, now: int) -> None:
        waiting = [t for t in job.tiles if not t.halted]
        if not waiting:
            return
        if not all(t.state == WAIT_BARRIER for t in waiting):
            return
        # Job-scoped memory fence: unlike the classic global barrier we
        # cannot wait for the event heap to empty (other jobs keep it
        # busy), so the fence releases when *this job's* op counter drains.
        if job.pending_ops:
            job.fence_waiting = True
            return
        for t in waiting:
            t.state = RUN
            t._ready_at = now + 1
            self.wake_tile(t, now + 1)

    def _check_job_halt(self, job: FabricJob, now: int) -> None:
        if job.finished or job.state == JOB_DRAINING:
            return
        if not all(t.halted for t in job.tiles):
            return
        if job.pending_ops:
            job.state = JOB_DRAINING
            job._drain_kind = JOB_DONE
            return
        self._finish_job(job, now, JOB_DONE)

    def _finish_job(self, job: FabricJob, now: int, state: str) -> None:
        job.state = state
        job.finished_at = now
        if job.on_complete is not None:
            job.on_complete(job, now)

    # --------------------------------------------------------------------- run
    def load_program(self, program: Program,
                     active_cores: Optional[Sequence[int]] = None) -> None:
        if active_cores is None:
            active_cores = range(self.cfg.num_cores)
        active = list(active_cores)
        ranks = {cid: i for i, cid in enumerate(active)}
        self._active = []
        for t in self.tiles:
            if t.core_id in ranks:
                t.reset_for_run(program, 0, ranks[t.core_id], len(active))
                self._active.append(t)
            else:
                t.halted = True
                t.next_wake = INF

    def run(self, max_cycles: int = _MAX_DEFAULT) -> RunStats:
        """Classic flow: run the loaded program to completion."""
        if self.profiler is not None:
            return self.profiler.run(self, max_cycles, serve=False)
        self._run_loop(max_cycles, serve=False)
        return self._finish_run()

    def run_serve(self, max_cycles: int = _MAX_DEFAULT) -> RunStats:
        """Multi-tenant flow: run until no job is live and no event pends.

        Jobs launched from event callbacks (completion-driven dispatch)
        keep the loop alive; a wedged job is routed to ``_stall_handler``
        instead of aborting the fabric.
        """
        if self.profiler is not None:
            return self.profiler.run(self, max_cycles, serve=True)
        self._run_loop(max_cycles, serve=True)
        return self._finish_run()

    def _run_loop(self, max_cycles: int, serve: bool) -> None:
        tel = self.telemetry
        sampler = None
        next_sample = INF
        if tel is not None:
            tel.attach(self)  # idempotent; binds the sampler's baselines
            sampler = tel.sampler
            if sampler is not None:
                next_sample = sampler.next_due
        obs = self.observe
        next_obs = INF
        if obs is not None:
            obs.bind(self)  # idempotent; sizes heatmaps, opens the sink
            if obs.interval:
                next_obs = obs.next_due
        heap = self._heap
        wheap = self._wake_heap
        active = [t for t in self._active if not t.halted]
        self._active_dirty = False
        # Adaptive scheduler.  Scan mode (the default) steps the active
        # list exactly like the historical loop — cheapest when most
        # active tiles are due most iterations (dense lockstep vector
        # phases, busy serving mixes).  Heap mode pops only the due
        # tiles off a lazy-deletion wake heap — cheapest when the due
        # set is a sliver of the active set (MIMD kernels sitting in
        # long memory stalls).  Mode flips on sustained due-set density
        # with a hysteresis band so neither regime thrashes: ≤1/8 of
        # active for _SCHED_TO_HEAP iterations enters heap mode, ≥1/4
        # for _SCHED_TO_SCAN iterations falls back.  Both modes step
        # tiles in active-list order with identical wake times, so
        # simulated cycles are bit-identical regardless of mode.
        heap_mode = False
        self._sched_heap_mode = False
        streak = 0
        while True:
            if self._active_dirty:
                active = [t for t in self._active if not t.halted]
                self._active_dirty = False
                if heap_mode:
                    self._rebuild_wake_heap(active)
            elif heap_mode and len(wheap) > (len(active) << 2) + 64:
                # lowering a tile's wake strands its previous entry; a
                # stranded INF entry never surfaces, so compact before
                # stale entries outnumber live ones
                self._rebuild_wake_heap(active)
            if not active and not (serve and self._pending_events):
                break
            if heap_mode:
                # the earliest *valid* wake: discard superseded entries
                # (a newer push exists for that tile) and halted tiles
                while wheap and (wheap[0][2] != wheap[0][3]._wake_entry
                                 or wheap[0][3].halted):
                    heapq.heappop(wheap)
                now = wheap[0][0] if wheap else INF
            else:
                now = min(t.next_wake for t in active) if active else INF
            head = self._peek_live()
            if head is not None and head < now:
                now = head
            if now >= INF:
                if head is not None:
                    now = head
                elif (serve and self._stall_handler is not None
                        and self._stall_handler(self.cycle)):
                    continue  # the handler freed a wedged job
                else:
                    self._deadlock()
            if now > max_cycles:
                raise SimulationTimeout(
                    f'exceeded {max_cycles} cycles at cycle {self.cycle}')
            self.cycle = now
            if now >= next_sample:
                sampler.take(now)
                next_sample = sampler.next_due
            if now >= next_obs:
                obs.take(now)
                next_obs = obs.next_due
            pending = self._pending_events
            while heap and heap[0][0] <= now:
                _, seq, fn = heapq.heappop(heap)
                if seq in pending:
                    pending.discard(seq)
                    fn(now)
            # the due set is complete here: event callbacks wake tiles
            # to `now` at the latest, step-time wakes are all > now, and
            # both land in the heap before this drain
            n = len(active)
            s = 0
            if heap_mode:
                epoch = self._wake_epoch
                due = []
                while wheap and wheap[0][0] <= now:
                    _, order, c, t = heapq.heappop(wheap)
                    if (c == t._wake_entry and not t.halted
                            and t._wake_epoch == epoch):
                        due.append((order, t))
                due.sort()  # active-list order, as the scan steps
                for order, t in due:
                    if t.halted or t.next_wake > now:
                        continue
                    nw = t.step(now)  # may call wake_tile (counter moves)
                    t.next_wake = nw = nw if nw > now else now + 1
                    self._wake_counter = c = self._wake_counter + 1
                    t._wake_entry = c
                    if nw < INF:
                        heapq.heappush(wheap, (nw, order, c, t))
                    s += 1
                if s << 2 >= n:
                    streak += 1
                    if streak >= _SCHED_TO_SCAN:
                        heap_mode = False
                        self._sched_heap_mode = False
                        del wheap[:]
                        streak = 0
                else:
                    streak = 0
            else:
                for t in active:
                    if t.next_wake <= now and not t.halted:
                        nw = t.step(now)
                        t.next_wake = nw if nw > now else now + 1
                        s += 1
                if s << 3 <= n:
                    streak += 1
                    if streak >= _SCHED_TO_HEAP:
                        heap_mode = True
                        self._sched_heap_mode = True
                        self._rebuild_wake_heap(active)
                        streak = 0
                else:
                    streak = 0
        self._sched_heap_mode = False

    def _finish_run(self) -> RunStats:
        self._drain()
        self.run_stats.cycles = self.cycle
        for t in self.tiles:
            # a core issuing at the final cycle index C occupies cycle
            # slot C, so the per-core elapsed count is C+1 slots; this
            # keeps cycles == instrs + stall_total() + idle() exact
            # (the headline run_stats.cycles keeps the last-index form)
            t.stats.cycles = self.cycle + 1
        if self.telemetry is not None:
            self.telemetry.finalize(self.cycle)
        if self.observe is not None:
            self.observe.finalize(self.cycle)
        return self.run_stats

    def _drain(self) -> None:
        """Flush in-flight memory events so final memory state is visible."""
        heap = self._heap
        pending = self._pending_events
        while heap:
            time, seq, fn = heapq.heappop(heap)
            if seq not in pending:
                continue
            pending.discard(seq)
            self.cycle = max(self.cycle, time)
            fn(self.cycle)

    def _deadlock(self, tiles: Optional[Sequence[Tile]] = None) -> None:
        """Raise :class:`DeadlockError` with a per-tile wait-state dump."""
        raise DeadlockError(self.wait_state_dump(tiles))

    def wait_state_dump(self, tiles: Optional[Sequence[Tile]] = None) -> str:
        """Describe every stuck tile: role, blocked instruction, frame and
        inet occupancy — the first thing one needs when a group wedges."""
        if tiles is None:
            tiles = self._active
        lines = ['deadlock: no runnable tile and no pending events']
        for t in tiles:
            if not t.halted:
                lines.append('  ' + t.describe_wait_state())
        return '\n'.join(lines)
