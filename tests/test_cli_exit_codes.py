"""The CLI exit-code contracts, asserted in one dedicated place.

These contracts are documented in docs/cli.md (the single source of
truth); this test pins each documented row so a behavior change must
touch both.  Summary:

* ``0``  success / no regression / gate passed
* ``1``  invalid artifact, failed request, or failed job
* ``2``  regression (``compare``, ``bench compare --gate``), SLO fail
         or invalid SLO policy (``serve --slo``)
"""

import copy
import json

import pytest

from repro.__main__ import main


@pytest.fixture(scope='module')
def run_report(tmp_path_factory):
    """One real run report generated through the CLI itself."""
    path = tmp_path_factory.mktemp('reports') / 'report.json'
    assert main(['run', 'gemm', 'V4', '--scale', 'test',
                 '--report', str(path)]) == 0
    return path


def test_run_success_is_zero(run_report):
    # exercised while building the fixture; pin the artifact exists
    assert json.load(open(run_report))['kind'] == 'repro-run-report'


def test_report_valid_zero_invalid_one(run_report, tmp_path, capsys):
    assert main(['report', str(run_report)]) == 0
    bad = tmp_path / 'bad.json'
    bad.write_text('{"kind": "not-a-report"}')
    assert main(['report', str(bad)]) == 1
    capsys.readouterr()


def test_compare_contract(run_report, tmp_path, capsys):
    # self-compare: no regression -> 0
    assert main(['compare', str(run_report), str(run_report)]) == 0
    # injected cycle regression beyond the threshold -> 2
    doc = json.load(open(run_report))
    slow = copy.deepcopy(doc)
    slow['cycles'] = int(doc['cycles'] * 1.5)
    slow_path = tmp_path / 'slow.json'
    slow_path.write_text(json.dumps(slow))
    assert main(['compare', str(run_report), str(slow_path)]) == 2
    # an improvement does not gate
    assert main(['compare', str(slow_path), str(run_report)]) == 0
    # invalid input -> 1
    bad = tmp_path / 'bad.json'
    bad.write_text('{}')
    assert main(['compare', str(run_report), str(bad)]) == 1
    capsys.readouterr()


SERVE = ['serve', '--seed', '3', '--requests', '3', '--scale', 'test']


def test_serve_success_is_zero(capsys):
    assert main(SERVE) == 0
    capsys.readouterr()


def test_serve_slo_contract(tmp_path, capsys):
    passing = tmp_path / 'pass.json'
    passing.write_text(json.dumps({'failed': {'fail': 0},
                                   'rejected': {'fail': 0}}))
    assert main(SERVE + ['--slo', str(passing)]) == 0
    # an unmeetable latency bound -> SLO fail -> 2
    failing = tmp_path / 'fail.json'
    failing.write_text(json.dumps({'latency_p99': {'fail': 1}}))
    assert main(SERVE + ['--slo', str(failing)]) == 2
    # invalid policy file -> 2 (the SLO flag's own error path)
    invalid = tmp_path / 'invalid.json'
    invalid.write_text(json.dumps({'latency_p99': {'kind': 'bogus'}}))
    assert main(SERVE + ['--slo', str(invalid)]) == 2
    capsys.readouterr()


FLEET = ['fleet', '--seed', '3', '--requests', '4', '--shards', '2',
         '--pattern', 'steady']


def test_fleet_success_is_zero(capsys):
    assert main(FLEET) == 0
    capsys.readouterr()


def test_fleet_slo_fail_is_two(tmp_path, capsys):
    failing = tmp_path / 'fail.json'
    failing.write_text(json.dumps({'latency_p99': {'fail': 1}}))
    assert main(FLEET + ['--slo', str(failing)]) == 2
    capsys.readouterr()


def test_fleet_invalid_policies_are_two(tmp_path, capsys):
    bad_slo = tmp_path / 'bad_slo.json'
    bad_slo.write_text(json.dumps({'latency_p99': {'kind': 'bogus'}}))
    assert main(FLEET + ['--slo', str(bad_slo)]) == 2
    bad_auto = tmp_path / 'bad_auto.json'
    bad_auto.write_text(json.dumps({'no_such_knob': 1}))
    assert main(FLEET + ['--autoscale', str(bad_auto)]) == 2
    assert main(FLEET + ['--crash', 'zero@zero']) == 2
    capsys.readouterr()


@pytest.fixture(scope='module')
def flight_artifacts(tmp_path_factory):
    """One crashed fleet run with the flight layer on, via the CLI."""
    out = tmp_path_factory.mktemp('flight')
    assert main(FLEET + ['--crash', '0@0', '--flight', str(out),
                         '--flight-label', 'cli',
                         '--shard-metrics-dir', str(out / 'metrics')]) == 0
    return out


def test_trace_merge_contract(flight_artifacts, tmp_path, capsys):
    journal = flight_artifacts / 'FLIGHT_cli.jsonl'
    merged = tmp_path / 'merged.json'
    assert main(['trace', 'merge', str(journal),
                 '--out', str(merged)]) == 0
    doc = json.load(open(merged))
    assert doc['otherData']['producer'] == 'repro.flight'
    # invalid journal -> 1
    bad = tmp_path / 'bad.jsonl'
    bad.write_text('not a journal\n')
    assert main(['trace', 'merge', str(bad), '--out', str(merged)]) == 1
    capsys.readouterr()


def test_trace_inspect_and_export_contract(flight_artifacts, tmp_path,
                                           capsys):
    journal = flight_artifacts / 'FLIGHT_cli.jsonl'
    rows = [json.loads(line) for line in open(journal)]
    # a real run's journal: every trace continuous -> 0
    assert main(['trace', 'inspect', str(journal)]) == 0
    tid = next(r['trace_id'] for r in rows if r.get('type') == 'span')
    assert main(['trace', 'inspect', str(journal),
                 '--trace-id', tid]) == 0
    assert main(['trace', 'inspect', str(journal),
                 '--trace-id', 'no-such-trace']) == 1
    # export mirrors the lookup contract
    out = tmp_path / 'one.json'
    assert main(['trace', 'export', str(journal), '--trace-id', tid,
                 '--out', str(out)]) == 0
    assert main(['trace', 'export', str(journal),
                 '--trace-id', 'no-such-trace',
                 '--out', str(out)]) == 1
    # a trace whose spans leave a gap -> 2 (discontinuity is the
    # invariant `trace inspect` gates on)
    broken = tmp_path / 'broken.jsonl'
    t = 'deadbeef-00000000'
    with open(broken, 'w') as f:
        f.write(json.dumps(rows[0]) + '\n')
        f.write(json.dumps(
            {'type': 'span', 'trace_id': t, 'span_id': f'{t}/root',
             'name': 'r', 'kind': 'request', 'track': 'router',
             'start': 0, 'end': 100}) + '\n')
        f.write(json.dumps(
            {'type': 'span', 'trace_id': t, 'span_id': f'{t}/q1',
             'name': 'q', 'kind': 'router_queue', 'track': 'router',
             'start': 0, 'end': 40}) + '\n')
    assert main(['trace', 'inspect', str(broken)]) == 2
    capsys.readouterr()


def test_postmortem_contract(flight_artifacts, tmp_path, capsys):
    pm = flight_artifacts / 'POSTMORTEM_cli-crash.json'
    assert main(['postmortem', 'validate', str(pm)]) == 0
    assert main(['postmortem', 'dump', str(pm)]) == 0
    # schema violations and non-postmortems -> 1
    bad = tmp_path / 'bad.json'
    bad.write_text('{"kind": "not-a-postmortem"}')
    assert main(['postmortem', 'validate', str(bad)]) == 1
    doc = json.load(open(pm))
    del doc['events']
    mangled = tmp_path / 'mangled.json'
    mangled.write_text(json.dumps(doc))
    assert main(['postmortem', 'validate', str(mangled)]) == 1
    capsys.readouterr()


def test_top_fleet_contract(flight_artifacts, tmp_path, capsys):
    assert main(['top', '--fleet',
                 str(flight_artifacts / 'metrics')]) == 0
    assert main(['top', '--fleet', str(tmp_path / 'nowhere')]) == 2
    capsys.readouterr()


def test_bench_compare_invalid_is_one(tmp_path, capsys):
    bad = tmp_path / 'bad.json'
    bad.write_text('not json at all')
    assert main(['bench', 'compare', str(bad), str(bad), '--gate']) == 1
    capsys.readouterr()


def test_version_is_zero(capsys):
    assert main(['version']) == 0
    out = capsys.readouterr().out
    assert 'repro' in out and 'code-version salt' in out
