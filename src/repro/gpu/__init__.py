"""The GPU (APU) comparator model, paper Section 5.3."""

from __future__ import annotations

from typing import Dict

from .config import DEFAULT_GPU, GpuConfig
from .machine import GpuError, GpuMachine, GpuMemSystem, Wavefront


def run_gpu_benchmark(bench, params: Dict[str, int], verify: bool = True,
                      cfg: GpuConfig = DEFAULT_GPU, telemetry=None):
    """Run one benchmark on the GPU model; returns a harness RunResult.

    ``telemetry`` attaches to the machine and fills the GPU memory
    service-time histogram (the fabric-side sampler does not apply).
    """
    from ..harness.runner import RunResult
    from ..manycore.stats import RunStats
    from .kernels import build_launches

    gm = GpuMachine(cfg)
    if telemetry is not None:
        telemetry.attach_gpu(gm)
    ws = bench.setup(gm, params)
    launches = build_launches(bench.name, ws, params, cfg)
    for program, entry in launches:
        gm.launch(program, entry)
    if verify:
        bench.verify(gm, ws, params)
    stats = RunStats()
    stats.cycles = gm.cycle
    return RunResult(bench.name, 'GPU', gm.cycle, stats,
                     telemetry=telemetry)


__all__ = ['GpuMachine', 'GpuConfig', 'DEFAULT_GPU', 'GpuError',
           'GpuMemSystem', 'Wavefront', 'run_gpu_benchmark']
