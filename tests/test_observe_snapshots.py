"""Observe-plane snapshot monotonicity and final-state fidelity.

ISSUE 5 satellite: JSONL snapshot cycle stamps are strictly increasing,
and the final record matches the end-of-run registry state exactly.
"""

import json

from repro.kernels import registry
from repro.manycore import Fabric
from repro.observe import ObservePlane
from repro.serve import KernelRequest, ServeScheduler


def _requests():
    out = []
    for i, (kernel, arrival) in enumerate(
            [('mvt', 0), ('gesummv', 60), ('atax', 150)]):
        params = registry.make(kernel).params_for('test')
        out.append(KernelRequest(req_id=i, kernel=kernel, params=params,
                                 lanes=4, groups=1, arrival=arrival))
    return out


def _serve_with_plane(tmp_path, interval=500):
    path = tmp_path / 'metrics.jsonl'
    plane = ObservePlane(snapshot_interval=interval,
                         metrics_out=str(path))
    fabric = Fabric()
    plane.attach(fabric)
    ServeScheduler(fabric).run(_requests())
    lines = [json.loads(ln) for ln in path.read_text().splitlines()]
    return plane, lines


def test_snapshot_cycles_strictly_increasing(tmp_path):
    plane, lines = _serve_with_plane(tmp_path)
    periodic = [ln for ln in lines if not ln.get('final')]
    assert len(periodic) >= 2, 'run too short to observe periodicity'
    cycles = [ln['cycle'] for ln in periodic]
    assert cycles == sorted(cycles)
    assert len(set(cycles)) == len(cycles), f'duplicate stamps: {cycles}'
    assert plane.snapshots == len(periodic)


def test_final_record_matches_registry_state(tmp_path):
    plane, lines = _serve_with_plane(tmp_path)
    final = lines[-1]
    assert final.get('final') is True
    assert final['metrics'] == plane.registry.snapshot()
    assert final['heatmaps'] == plane.heatmaps_dict()
    # the final record never stamps earlier than the last periodic one
    periodic = [ln['cycle'] for ln in lines if not ln.get('final')]
    assert final['cycle'] >= periodic[-1]


def test_finalize_on_snapshot_boundary_does_not_duplicate(tmp_path):
    path = tmp_path / 'm.jsonl'
    plane = ObservePlane(snapshot_interval=100, metrics_out=str(path))
    plane.attach(Fabric())
    plane.take(100)
    assert plane.snapshots == 1
    plane.take(100)  # same cycle again: refresh, no new stamp
    assert plane.snapshots == 1
    plane.finalize(100)
    assert plane.snapshots == 1
    lines = [json.loads(ln) for ln in path.read_text().splitlines()]
    stamps = [ln['cycle'] for ln in lines if not ln.get('final')]
    assert stamps == [100]
    assert lines[-1].get('final') is True
    assert 'metrics' in lines[-1]


def test_monotone_without_sink(tmp_path):
    # the counter-based invariant holds with no JSONL sink attached
    plane = ObservePlane(snapshot_interval=700)
    fabric = Fabric()
    plane.attach(fabric)
    ServeScheduler(fabric).run(_requests())
    assert plane.snapshots >= 2
    assert plane._last_cycle == fabric.cycle
