"""Sweep-level report artifact.

Folds the per-job outcomes of one sweep into a single JSON document that
shares provenance (git SHA, timestamp, Python version) with the telemetry
run reports, so CI can archive one artifact per sweep and assert on it —
the second-pass 100%-cache-hit gate checks ``launched == 0`` here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .engine import JobOutcome
from .spec import machine_hash

SWEEP_REPORT_KIND = 'repro-sweep-report'
SWEEP_SCHEMA_VERSION = 1


def build_sweep_report(outcomes: Sequence[JobOutcome], name: str = 'sweep',
                       launched: int = 0,
                       elapsed: Optional[float] = None) -> dict:
    from ..telemetry.report import _generated
    jobs = []
    counts = {}
    for o in outcomes:
        counts[o.status] = counts.get(o.status, 0) + 1
        doc = {
            'key': o.key,
            'benchmark': o.spec.benchmark,
            'config': o.spec.config,
            'status': o.status,
            'attempts': o.attempts,
            'elapsed': round(o.elapsed, 3),
        }
        if o.result is not None:
            doc['cycles'] = o.result.cycles
            doc['instrs'] = o.result.instrs
            doc['machine_hash'] = machine_hash(o.result.machine)
        if o.error:
            doc['error'] = o.error.strip().splitlines()[-1]
        jobs.append(doc)
    report = {
        'schema_version': SWEEP_SCHEMA_VERSION,
        'kind': SWEEP_REPORT_KIND,
        'generated': _generated(),
        'name': name,
        'total': len(jobs),
        'by_status': counts,
        'launched': launched,
        'jobs': jobs,
    }
    if elapsed is not None:
        report['elapsed'] = round(elapsed, 3)
    return report
