"""Tests for the JSON experiment interface and the CLI."""

import json

import pytest

from repro.harness.experiments import (ExperimentSpec, run_experiment,
                                       VALID_METRICS)


class TestExperimentSpec:
    def test_minimal_spec_defaults(self):
        spec = ExperimentSpec.from_dict({'benchmarks': ['gemm']})
        assert spec.benchmarks == ['gemm']
        assert spec.configs == ['NV', 'NV_PF', 'V4']
        assert spec.metrics == ['cycles']

    def test_empty_benchmarks_means_whole_suite(self):
        spec = ExperimentSpec.from_dict({})
        assert len(spec.benchmarks) == 15

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match='unknown benchmark'):
            ExperimentSpec.from_dict({'benchmarks': ['nope']})

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match='unknown metric'):
            ExperimentSpec.from_dict({'benchmarks': ['gemm'],
                                      'metrics': ['watts']})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match='unknown experiment keys'):
            ExperimentSpec.from_dict({'benchmark': ['gemm']})

    def test_machine_overrides_applied(self):
        spec = ExperimentSpec.from_dict(
            {'benchmarks': ['gemm'],
             'machine': {'dram_bandwidth_words_per_cycle': 8.0}})
        m = spec.machine_config()
        assert m.dram_bandwidth_words_per_cycle == 8.0

    def test_load_from_file(self, tmp_path):
        p = tmp_path / 'e.json'
        p.write_text(json.dumps({'name': 'x', 'benchmarks': ['bicg'],
                                 'configs': ['NV'], 'scale': 'test'}))
        spec = ExperimentSpec.load(p)
        assert spec.name == 'x'


class TestRunExperiment:
    def test_runs_and_renders(self):
        result = run_experiment({
            'name': 't', 'benchmarks': ['gemm'],
            'configs': ['NV', 'V4'], 'scale': 'test',
            'metrics': ['speedup', 'cycles'],
        })
        text = result.render()
        assert 't: speedup' in text
        assert 't: cycles' in text
        row = result.tables['speedup'].rows['gemm']
        assert row['NV'] == 1.0
        assert row['V4'] > 1.0

    def test_all_metrics_computable(self):
        result = run_experiment({
            'benchmarks': ['bicg'], 'configs': ['NV_PF'],
            'scale': 'test', 'metrics': list(VALID_METRICS),
        })
        for m in VALID_METRICS:
            assert result.tables[m].rows['bicg']['NV_PF'] >= 0

    def test_machine_override_changes_result(self):
        base = run_experiment({'benchmarks': ['gesummv'],
                               'configs': ['NV_PF'], 'scale': 'test',
                               'metrics': ['cycles']})
        fast = run_experiment({'benchmarks': ['gesummv'],
                               'configs': ['NV_PF'], 'scale': 'test',
                               'machine': {
                                   'dram_bandwidth_words_per_cycle': 64.0},
                               'metrics': ['cycles']})
        assert fast.tables['cycles'].rows['gesummv']['NV_PF'] <= \
            base.tables['cycles'].rows['gesummv']['NV_PF']


class TestCli:
    def _run(self, *argv):
        from repro.__main__ import main
        return main(list(argv))

    def test_list(self, capsys):
        assert self._run('list') == 0
        out = capsys.readouterr().out
        assert 'gemm' in out and 'V16' in out

    def test_run(self, capsys):
        assert self._run('run', 'gemm', 'NV', '--scale', 'test') == 0
        out = capsys.readouterr().out
        assert 'verified' in out

    def test_figure(self, capsys):
        assert self._run('figure', 'bfs', '--scale', 'test') == 0
        out = capsys.readouterr().out
        assert 'bfs' in out

    def test_experiment(self, capsys, tmp_path):
        p = tmp_path / 'e.json'
        p.write_text(json.dumps({'benchmarks': ['bicg'],
                                 'configs': ['NV', 'V4'],
                                 'scale': 'test',
                                 'metrics': ['speedup']}))
        assert self._run('experiment', str(p)) == 0
        assert 'speedup' in capsys.readouterr().out
