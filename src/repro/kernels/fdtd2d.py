"""fdtd-2d: finite-difference time-domain over tmax timesteps.

Each timestep runs four kernels separated by global barriers: the fict
boundary row, the ey and ex half-steps, and the hz update.  The ex kernel's
j-1 tap exercises the unaligned vload pair; the time loop is a run-time
loop around re-formed vector groups (the paper forms groups per kernel).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import _strided_tiles, mimd_stencil_rows
from .vector_templates import StencilSection, emit_stencil_rows


class Fdtd2d(Benchmark):
    name = 'fdtd-2d'
    test_params = {'n': 8, 'm': 16, 'tmax': 2}
    bench_params = {'n': 16, 'm': 64, 'tmax': 3}

    def setup(self, fabric: Fabric, params) -> Workspace:
        n, m, tmax = params['n'], params['m'], params['tmax']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'ex', g.random((n, m)))
        self.alloc_np(fabric, ws, 'ey', g.random((n, m)))
        self.alloc_np(fabric, ws, 'hz', g.random((n, m)))
        self.alloc_np(fabric, ws, 'fict', g.random(tmax))
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        ex, ey, hz = refs.fdtd2d(ws.inputs['ex'], ws.inputs['ey'],
                                 ws.inputs['hz'], ws.inputs['fict'],
                                 params['tmax'])
        return {'ex': ex, 'ey': ey, 'hz': hz}

    # -- kernel descriptions shared by MIMD and vector builds -----------------
    def _stencils(self, ws, params):
        n, m = params['n'], params['m']
        ex, ey, hz = ws.base('ex'), ws.base('ey'), ws.base('hz')
        return [
            dict(name='ey', n_out_rows=n - 1, row0=1, ncols=m,
                 sections=[StencilSection(hz, m, 0, 0),
                           StencilSection(hz, m, -1, 0)],
                 coeffs=[-0.5, 0.5], out_base=ey, out_stride=m,
                 jlo=0, jhi=m, out_coeff_old=1.0),
            dict(name='ex', n_out_rows=n, row0=0, ncols=m,
                 sections=[StencilSection(hz, m, 0, 0),
                           StencilSection(hz, m, 0, -1)],
                 coeffs=[-0.5, 0.5], out_base=ex, out_stride=m,
                 jlo=1, jhi=m, out_coeff_old=1.0),
            dict(name='hz', n_out_rows=n - 1, row0=0, ncols=m,
                 sections=[StencilSection(ex, m, 0, 1),
                           StencilSection(ex, m, 0, 0),
                           StencilSection(ey, m, 1, 0),
                           StencilSection(ey, m, 0, 0)],
                 coeffs=[-0.7, 0.7, -0.7, 0.7], out_base=hz, out_stride=m,
                 jlo=0, jhi=m - 1, out_coeff_old=1.0),
        ]

    def _fict_kernel(self, ws, params):
        m = params['m']
        fict, ey = ws.base('fict'), ws.base('ey')

        def body(a):
            # ey[0][j] = fict[t] for all j (t in x19)
            a.li('x5', fict)
            a.add('x5', 'x5', 'x19')
            a.lw('f1', 'x5', 0)
            with _strided_tiles(a, m):
                a.li('x6', ey)
                a.add('x6', 'x6', 'x3')
                a.sw('f1', 'x6', 0)

        return body

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        mb = MimdKernelBuilder()
        with mb.loop(params['tmax']):
            mb.add_kernel(self._fict_kernel(ws, params))
            for st in self._stencils(ws, params):
                st = dict(st)
                st.pop('name')
                mb.add_kernel(lambda a, st=st: mimd_stencil_rows(
                    a, **st, cfg=fabric.cfg, prefetch=prefetch, pcv=pcv))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        b = self.make_vector_builder(fabric, vp, params)
        p = b.program()
        flen, _ = self.fitted_flen(fabric, vp.lanes, vp.pcv,
                                   params['m'], ni=params['n'], cap=4)
        with p.loop(params['tmax']):
            p.mimd_phase(self._fict_kernel(ws, params))
            for st in self._stencils(ws, params):
                st = dict(st)
                st['name'] = 'fdtd_' + st['name']
                emit_stencil_rows(p, **st, flen=flen)
        return p.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        return 5 * self.flen_for(fabric, lanes, pcv)
