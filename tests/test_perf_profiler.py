"""The host self-profiler: bit-identical simulation, >=90% attribution.

Acceptance (ISSUE 5): the profiler attributes at least 90% of measured
host time to named components with the residual reported explicitly,
and profiling never changes simulation results — the profiled run loop
is a timing-annotated copy of the stock one, so these tests double as
the drift guard between the two copies.
"""

import numpy as np

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import Fabric
from repro.perf import LOOP_COMPONENTS, HostProfiler


def _run(profiler=None, benchmark='gemm', config='V4'):
    bench = registry.make(benchmark)
    params = bench.params_for('test')
    return run_benchmark(bench, config, params, profiler=profiler)


def _fingerprint(r):
    return (r.cycles, r.stats.total_instrs, r.stats.noc_word_hops,
            tuple(sorted((cid, cs.instrs, cs.stall_total(), cs.cycles)
                         for cid, cs in r.stats.cores.items())))


def test_profiled_run_bit_identical():
    base = _run()
    prof = HostProfiler()
    profiled = _run(profiler=prof)
    assert _fingerprint(base) == _fingerprint(profiled)
    assert prof.total > 0.0


def test_profiled_mimd_bit_identical():
    base = _run(config='NV_PF')
    profiled = _run(profiler=HostProfiler(), config='NV_PF')
    assert _fingerprint(base) == _fingerprint(profiled)


def test_profiled_serve_bit_identical():
    from repro.serve import KernelRequest, ServeScheduler

    def requests():
        out = []
        for i, (kernel, arrival) in enumerate(
                [('mvt', 0), ('gesummv', 40), ('atax', 90)]):
            params = registry.make(kernel).params_for('test')
            out.append(KernelRequest(req_id=i, kernel=kernel,
                                     params=params, lanes=4, groups=1,
                                     arrival=arrival))
        return out

    def serve(profiler=None):
        fabric = Fabric()
        if profiler is not None:
            profiler.attach(fabric)
        result = ServeScheduler(fabric).run(requests())
        return [(r.req_id, r.state, r.launched_at, r.finished_at,
                 r.latency) for r in result.requests] + [result.makespan]

    prof = HostProfiler()
    assert serve() == serve(profiler=prof)
    assert prof.seconds.get('serve', 0.0) >= 0.0
    assert prof.coverage() >= 0.9


def test_attribution_coverage_and_residual():
    prof = HostProfiler()
    _run(profiler=prof)
    # >= 90% of measured wall time lands in named components; the
    # residual is explicit and consistent with the component sum
    assert prof.coverage() >= 0.9, prof.render()
    assert prof.residual() >= 0.0
    assert abs(prof.total - prof.attributed() - prof.residual()) < 1e-9
    assert prof.seconds['tile_step'] > 0.0
    # harness phases recorded outside the loop, not counted in coverage
    for scope in ('setup', 'codegen', 'verify', 'energy'):
        assert scope in prof.seconds
        assert scope not in LOOP_COMPONENTS


def test_render_and_to_dict():
    prof = HostProfiler()
    _run(profiler=prof)
    text = prof.render()
    assert 'tile_step' in text and '(residual)' in text
    doc = prof.to_dict()
    assert doc['total_seconds'] > 0.0
    assert 0.9 <= doc['coverage'] <= 1.0
    assert doc['residual_seconds'] >= 0.0
    assert 'top_functions' not in doc  # deep mode off


def test_collapsed_stacks_format(tmp_path):
    prof = HostProfiler()
    _run(profiler=prof)
    path = tmp_path / 'run.folded'
    prof.write_collapsed(str(path))
    lines = path.read_text().strip().split('\n')
    assert lines
    for line in lines:
        stack, value = line.rsplit(' ', 1)
        assert stack.startswith('repro;')
        assert int(value) >= 0
    assert any(';tile_step ' in ln for ln in lines)


def test_deep_mode_top_functions():
    prof = HostProfiler(deep=True)
    _run(profiler=prof)
    rows = prof.top_functions(5)
    assert rows and len(rows) <= 5
    for r in rows:
        assert r['calls'] >= 1 and r['cumtime'] >= 0.0
    assert 'hot functions' in prof.render_top()
    assert prof.to_dict()['top_functions']


def test_scope_accumulates():
    prof = HostProfiler()
    with prof.scope('custom'):
        sum(range(1000))
    with prof.scope('custom'):
        sum(range(1000))
    assert prof.seconds['custom'] > 0.0


def test_event_classification():
    prof = HostProfiler()
    _run(profiler=prof)  # V4 exercises LLC + wide/frame deliveries
    assert prof.seconds.get('llc', 0.0) > 0.0
    assert prof.seconds.get('frames', 0.0) > 0.0
    # every attributed component is a documented name
    for name in prof.seconds:
        assert name in LOOP_COMPONENTS + ('setup', 'codegen', 'verify',
                                          'energy', 'custom')


def test_detach_restores_stock_loop():
    fabric = Fabric()
    prof = HostProfiler().attach(fabric)
    assert fabric.profiler is prof
    prof.detach(fabric)
    assert fabric.profiler is None


def test_verification_passes_under_profiler():
    # run_benchmark verifies against numpy; a wrong profiled loop would
    # produce wrong kernel output, not just wrong timing
    r = _run(profiler=HostProfiler(), benchmark='mvt', config='V4_PCV')
    assert r.cycles > 0
    assert np.isfinite(r.cycles)
