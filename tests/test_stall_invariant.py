"""Stall-taxonomy accounting invariant.

Every cycle of every core must be attributable: it either issued an
instruction, was charged to exactly one stall cause, or was idle
(pre-formation / post-halt / never activated).  ``idle() >= 0`` is the
teeth of the invariant — over-attribution (a cycle charged to two
causes, or a stall overlapping an issue) drives it negative.
"""

import pytest

from repro.harness import run_benchmark
from repro.kernels import registry
from repro.manycore import small_config
from repro.manycore.stats import STALL_CAUSES


def check_taxonomy(stats):
    assert stats.cores, 'run produced no per-core stats'
    for cid, cs in stats.cores.items():
        total = cs.stall_total()
        # stall_total() really is the sum of the taxonomy fields
        assert total == sum(getattr(cs, c) for c in STALL_CAUSES)
        assert cs.idle() >= 0, (
            f'core {cid}: over-attributed — cycles={cs.cycles} '
            f'instrs={cs.instrs} stalls={total}')
        assert cs.cycles == cs.instrs + total + cs.idle()
        for cause in STALL_CAUSES:
            assert getattr(cs, cause) >= 0, f'core {cid}: {cause} negative'


@pytest.mark.parametrize('config', ['NV', 'NV_PF', 'V4'])
@pytest.mark.parametrize('bench_name', ['gemm', 'mvt'])
def test_stall_taxonomy_invariant(config, bench_name):
    bench = registry.make(bench_name)
    params = bench.params_for('test')
    r = run_benchmark(bench, config, params, base_machine=small_config())
    check_taxonomy(r.stats)
    # an active configuration must attribute *some* stall cycles somewhere
    assert sum(r.stats.stall_breakdown().values()) > 0


def test_active_cores_do_issue():
    bench = registry.make('gemm')
    params = bench.params_for('test')
    r = run_benchmark(bench, 'V4', params, base_machine=small_config())
    active = [cs for cs in r.stats.cores.values() if cs.instrs > 0]
    assert active
    for cs in active:
        assert cs.cycles >= cs.instrs
