"""Deterministic seeded request-trace generation.

The generator is the serving counterpart of the figure sweeps: a seed
fully determines the kernels, shapes, priorities, and arrival process,
so a trace can be named in CI ("seed 3, 6 requests") and replayed
bit-identically anywhere.  Arrivals follow a geometric interarrival
process (the discrete analogue of Poisson arrivals); shapes are drawn
from the configured (lanes, groups) menu.

:func:`open_loop_trace` extends this to *realistic* open-loop traffic
for the fleet (``repro.fleet``): the arrival rate is modulated by a
seeded **diurnal wave** (a sinusoid over a configurable "day"), seeded
**bursts** (short windows of near-simultaneous arrivals, the discrete
analogue of a Markov-modulated Poisson process), and request sizes are
drawn **heavy-tailed** — most requests take the smallest shape/problem
size, a Pareto-distributed minority take the larger ones.  It is a
*streaming generator*: requests are produced one at a time with O(1)
state, so traces of millions of requests can be routed without ever
being materialized, and the same ``(seed, n)`` prefix is bit-identical
in any process (only ``random.Random`` is consulted, never the
platform hash seed).
"""

from __future__ import annotations

import json
import math
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..kernels import registry
from .request import KernelRequest

#: default kernel menu: heterogeneous, small at test scale, and all
#: verifiable against their numpy references
DEFAULT_KERNELS = ('mvt', 'gesummv', 'atax')

#: default group-shape menu: (lanes, groups)
DEFAULT_SHAPES = ((4, 1), (4, 2), (4, 3))

#: traffic patterns understood by :func:`open_loop_trace`
PATTERNS = ('steady', 'diurnal', 'bursty', 'mixed')


def mint_trace_id(seed: int, req_id: int) -> str:
    """Deterministic distributed-tracing id for request ``req_id`` of a
    seeded trace — stable across processes and replays, so a trace can
    be named in a bug report the same way the trace file is."""
    return f'{seed & 0xffffffff:08x}-{req_id:08x}'

#: per-kernel problem-size ladders for heavy-tailed request sizes; every
#: rung is compatible with each shape in DEFAULT_SHAPES (all are
#: power-of-two matvec widths, so vector spans always fit them)
SIZE_LADDERS: Dict[str, List[Dict[str, int]]] = {
    'mvt': [{'n': 16}, {'n': 32}, {'n': 64}],
    'gesummv': [{'n': 16}, {'n': 32}, {'n': 64}],
    'atax': [{'n': 16}, {'n': 32}, {'n': 64}],
}


def generate_trace(seed: int, n_requests: int,
                   kernels: Sequence[str] = DEFAULT_KERNELS,
                   shapes: Sequence[Tuple[int, int]] = DEFAULT_SHAPES,
                   scale: str = 'test',
                   mean_interarrival: int = 2000,
                   priorities: Sequence[int] = (0, 1, 2),
                   timeout: Optional[int] = None) -> List[KernelRequest]:
    """Build a deterministic request trace from a seed."""
    rng = random.Random(seed)
    requests = []
    arrival = 0
    for i in range(n_requests):
        kernel = rng.choice(list(kernels))
        lanes, groups = rng.choice(list(shapes))
        params = registry.make(kernel).params_for(scale)
        requests.append(KernelRequest(
            req_id=i, kernel=kernel, params=params, lanes=lanes,
            groups=groups, priority=rng.choice(list(priorities)),
            arrival=arrival, timeout=timeout,
            trace_id=mint_trace_id(seed, i)))
        # geometric interarrival with the requested mean, never zero so
        # admission order is stable under queue sorting
        arrival += 1 + int(rng.expovariate(1.0 / max(1, mean_interarrival)))
    return requests


def _heavy_tail_index(rng: random.Random, n: int, alpha: float) -> int:
    """Pareto-distributed rung pick: index 0 dominates, tail reaches n-1.

    A unit-Pareto draw ``x >= 1`` is mapped to ``floor(log2(x))`` so the
    probability of rung *k* decays geometrically with exponent
    ``alpha`` — the classic heavy-tailed size mix (many mice, few
    elephants) — then clamped to the ladder.
    """
    x = rng.paretovariate(alpha)
    return min(n - 1, int(math.log2(x) + 1e-12) if x >= 1 else 0)


def open_loop_trace(seed: int, n_requests: int,
                    pattern: str = 'mixed',
                    kernels: Sequence[str] = DEFAULT_KERNELS,
                    shapes: Sequence[Tuple[int, int]] = DEFAULT_SHAPES,
                    scale: str = 'test',
                    mean_interarrival: int = 2000,
                    priorities: Sequence[int] = (0, 1, 2),
                    timeout: Optional[int] = None,
                    day_cycles: int = 200_000,
                    diurnal_amplitude: float = 0.8,
                    burst_every: int = 40_000,
                    burst_len: int = 8,
                    burst_compression: int = 50,
                    tail_alpha: float = 1.3,
                    size_ladders: Optional[Dict[str, List[Dict[str, int]]]]
                    = None) -> Iterator[KernelRequest]:
    """Stream an open-loop request trace (arrivals independent of service).

    Yields ``n_requests`` :class:`KernelRequest`\\ s one at a time — O(1)
    generator state, so million-request traces need no materialization.
    ``pattern`` selects the arrival process:

    * ``steady``  — the plain geometric process of
      :func:`generate_trace`;
    * ``diurnal`` — the instantaneous rate follows a seeded sinusoid
      with period ``day_cycles`` and the given amplitude (a "day" of
      peak and trough load);
    * ``bursty``  — geometrically spaced bursts (mean gap
      ``burst_every``) of ``burst_len`` requests whose interarrivals
      are compressed by ``burst_compression``;
    * ``mixed``   — diurnal base rate plus bursts (the default; this is
      what the fleet router and autoscaler are tested under).

    Request *sizes* are heavy-tailed on two axes: the group shape is
    drawn Pareto-style from ``shapes`` ordered by tile count, and the
    problem size from the kernel's ``size_ladders`` rung (when the
    kernel has one and ``scale`` is ``test``; at bench scale the
    registered bench params are used unmodified).
    """
    if pattern not in PATTERNS:
        raise ValueError(f'unknown traffic pattern {pattern!r}; choose '
                         f'from {", ".join(PATTERNS)}')
    rng = random.Random(seed)
    ladders = SIZE_LADDERS if size_ladders is None else size_ladders
    shape_menu = sorted(shapes, key=lambda lg: lg[1] * (lg[0] + 1))
    kernel_menu = list(kernels)
    diurnal = pattern in ('diurnal', 'mixed')
    bursty = pattern in ('bursty', 'mixed')
    arrival = 0
    burst_left = 0
    next_burst = (1 + int(rng.expovariate(1.0 / max(1, burst_every)))
                  if bursty else None)
    for i in range(n_requests):
        kernel = rng.choice(kernel_menu)
        lanes, groups = shape_menu[
            _heavy_tail_index(rng, len(shape_menu), tail_alpha)]
        ladder = ladders.get(kernel)
        if scale == 'test' and ladder:
            params = dict(ladder[
                _heavy_tail_index(rng, len(ladder), tail_alpha)])
        else:
            params = registry.make(kernel).params_for(scale)
        yield KernelRequest(
            req_id=i, kernel=kernel, params=params, lanes=lanes,
            groups=groups, priority=rng.choice(list(priorities)),
            arrival=arrival, timeout=timeout,
            trace_id=mint_trace_id(seed, i))
        # ---- advance the arrival clock (open loop: never waits on us)
        rate_scale = 1.0
        if diurnal:
            phase = 2.0 * math.pi * (arrival % day_cycles) / day_cycles
            rate_scale = 1.0 + diurnal_amplitude * math.sin(phase)
            rate_scale = max(rate_scale, 0.05)
        gap_mean = max(1.0, mean_interarrival / rate_scale)
        if bursty:
            if burst_left > 0:
                burst_left -= 1
                gap_mean = max(1.0, gap_mean / burst_compression)
            elif arrival >= next_burst:
                burst_left = burst_len - 1
                next_burst = arrival + 1 + int(
                    rng.expovariate(1.0 / max(1, burst_every)))
                gap_mean = max(1.0, gap_mean / burst_compression)
        arrival += 1 + int(rng.expovariate(1.0 / gap_mean))


def save_trace(path: str, requests: List[KernelRequest]) -> None:
    with open(path, 'w') as f:
        json.dump({'kind': 'repro-serve-trace',
                   'requests': [r.to_dict() for r in requests]}, f, indent=1)


def load_trace(path: str) -> List[KernelRequest]:
    with open(path) as f:
        doc = json.load(f)
    if doc.get('kind') != 'repro-serve-trace':
        raise ValueError(f'{path} is not a serve trace file')
    return [KernelRequest.from_dict(d) for d in doc['requests']]
