"""The Rockcress mini-ISA: opcodes, instructions, and a structured assembler."""

from . import opcodes
from .assembler import (Assembler, Label, Program, VL_ALIGNED, VL_GROUP,
                        VL_PREFIX, VL_SELF, VL_SINGLE, VL_SUFFIX)
from .instruction import Instr, disasm, freg, parse_reg, reg_name, xreg

__all__ = [
    'Assembler', 'Program', 'Label', 'Instr', 'disasm', 'opcodes',
    'parse_reg', 'reg_name', 'xreg', 'freg',
    'VL_SINGLE', 'VL_GROUP', 'VL_SELF', 'VL_ALIGNED', 'VL_PREFIX',
    'VL_SUFFIX',
]
