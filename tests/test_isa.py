"""Unit tests for the mini-ISA: assembler, labels, decode annotations."""

import pytest

from repro.isa import Assembler, disasm, opcodes as op
from repro.isa.instruction import parse_reg, reg_name


class TestRegisters:
    def test_parse_int_regs(self):
        assert parse_reg('x0') == 0
        assert parse_reg('x31') == 31

    def test_parse_fp_regs(self):
        assert parse_reg('f0') == 32
        assert parse_reg('f31') == 63

    def test_parse_simd_regs(self):
        assert parse_reg('v0') == 0
        assert parse_reg('v7') == 7

    def test_parse_passthrough_int(self):
        assert parse_reg(17) == 17

    def test_bad_register_rejected(self):
        with pytest.raises(ValueError):
            parse_reg('x32')
        with pytest.raises(ValueError):
            parse_reg('v8')
        with pytest.raises(ValueError):
            parse_reg('q1')

    def test_reg_name_roundtrip(self):
        for name in ['x0', 'x5', 'x31', 'f0', 'f17', 'f31']:
            assert reg_name(parse_reg(name)) == name


class TestAssembler:
    def test_simple_program_length(self):
        a = Assembler()
        a.li('x5', 3)
        a.add('x6', 'x5', 'x5')
        a.halt()
        prog = a.finish()
        assert len(prog) == 3

    def test_forward_label_resolution(self):
        a = Assembler()
        a.j('end')
        a.nop()
        a.bind('end')
        a.halt()
        prog = a.finish()
        assert prog.instrs[0].imm == 2

    def test_backward_label_resolution(self):
        a = Assembler()
        a.bind('top')
        a.nop()
        a.j('top')
        prog = a.finish()
        assert prog.instrs[1].imm == 0

    def test_unbound_label_raises(self):
        a = Assembler()
        a.j('nowhere')
        with pytest.raises(ValueError, match='unbound'):
            a.finish()

    def test_double_bind_raises(self):
        a = Assembler()
        a.bind('x')
        with pytest.raises(ValueError, match='twice'):
            a.bind('x')

    def test_entry_lookup(self):
        a = Assembler()
        a.nop()
        a.bind('kernel')
        a.halt()
        prog = a.finish()
        assert prog.entry('kernel') == 1

    def test_anonymous_labels_unique(self):
        a = Assembler()
        l1 = a.label()
        l2 = a.label()
        assert l1.name != l2.name

    def test_listing_contains_labels(self):
        a = Assembler()
        a.bind('main')
        a.li('x1', 7)
        a.halt()
        listing = a.finish().listing()
        assert 'main:' in listing
        assert 'li x1, 7' in listing


class TestDecode:
    def _one(self, emit):
        a = Assembler()
        emit(a)
        return a.finish().instrs[0]

    def test_rrr_reads_writes(self):
        i = self._one(lambda a: a.add('x3', 'x1', 'x2'))
        assert set(i.reads) == {1, 2}
        assert i.writes == (3,)

    def test_x0_excluded_from_tracking(self):
        i = self._one(lambda a: a.add('x0', 'x0', 'x1'))
        assert i.reads == (1,)
        assert i.writes == ()

    def test_fma_reads_dest(self):
        i = self._one(lambda a: a.fma('f1', 'f2', 'f3'))
        assert parse_reg('f1') in i.reads
        assert i.writes == (parse_reg('f1'),)

    def test_store_reads_both(self):
        i = self._one(lambda a: a.sw('x2', 'x1', 4))
        assert set(i.reads) == {1, 2}
        assert i.writes == ()

    def test_load_writes_dest(self):
        i = self._one(lambda a: a.lw('x5', 'x6', 0))
        assert i.reads == (6,)
        assert i.writes == (5,)

    def test_simd_vreg_tracking(self):
        i = self._one(lambda a: a.vfma4('v1', 'v2', 'v3'))
        assert set(i.vreads) == {1, 2, 3}
        assert i.vwrites == (1,)

    def test_vredsum_crosses_files(self):
        i = self._one(lambda a: a.vredsum4('x4', 'v2'))
        assert i.vreads == (2,)
        assert i.writes == (4,)

    def test_branch_reads_no_writes(self):
        i = self._one(lambda a: a.bne('x1', 'x2', 0))
        assert set(i.reads) == {1, 2}
        assert i.writes == ()

    def test_frame_start_writes(self):
        i = self._one(lambda a: a.frame_start('x8'))
        assert i.writes == (8,)


class TestDisasm:
    def test_various_formats_do_not_crash(self):
        a = Assembler()
        a.li('x1', 5)
        a.add('x2', 'x1', 'x1')
        a.fma('f1', 'f2', 'f3')
        a.lw('x3', 'x2', 8)
        a.sw('x3', 'x2', 8)
        a.beq('x1', 'x2', 0)
        a.vload('x4', 'x5', 0, 4, 1)
        a.frame_start('x8')
        a.remem()
        a.vissue(0)
        a.vend()
        a.pred_eq('x1', 'x2')
        a.vfma4('v1', 'v2', 'v3')
        a.csrr('x9', op.CSR_TID)
        a.halt()
        for inst in a.finish().instrs:
            text = disasm(inst)
            assert isinstance(text, str) and text

    def test_opcode_names_unique(self):
        assert op.name(op.ADD) == 'add'
        assert op.name(op.VLOAD) == 'vload'
        assert op.name(op.FRAME_START) == 'frame_start'


class TestForRange:
    def test_emits_loop_structure(self):
        a = Assembler()
        with a.for_range('x5', 0, 10):
            a.addi('x6', 'x6', 1)
        a.halt()
        prog = a.finish()
        ops = [i.op for i in prog.instrs]
        assert op.BGE in ops
        assert op.J in ops
