"""Acceptance: over-subscription queues (never fails); timeouts are local.

A trace asking for more tiles than the mesh owns must wait in the
admission queue, not error; a request that exceeds its deadline is
reported timed-out without wedging the requests sharing the fabric.
"""

import pytest

from repro.kernels import registry
from repro.manycore import Fabric, MachineConfig
from repro.serve import (DONE, FAILED, KernelRequest, REJECTED,
                         ServeScheduler, TIMED_OUT, build_serve_report)


def _small_fabric():
    return Fabric(MachineConfig(mesh_width=4, mesh_height=4))


def _req(i, kernel='mvt', **kw):
    params = registry.make(kernel).params_for('test')
    kw.setdefault('lanes', 4)
    kw.setdefault('groups', 1)
    kw.setdefault('arrival', 0)
    return KernelRequest(req_id=i, kernel=kernel, params=params, **kw)


class TestBackpressure:
    def test_oversubscribed_trace_queues_and_drains(self):
        # six 5-tile requests on a 16-tile mesh: three fit, three wait
        reqs = [_req(i) for i in range(6)]
        result = ServeScheduler(_small_fabric()).run(reqs)
        assert all(r.state == DONE for r in result.requests)
        waited = [r for r in result.requests if r.queue_wait > 0]
        assert len(waited) == 3, 'over-subscription must queue, not fail'
        assert result.peak_queue_depth >= 3
        assert result.alloc_stats.capacity_failures > 0
        # a queued request starts only once a region frees: its launch
        # coincides with some earlier request's completion
        finishes = {r.finished_at for r in result.requests}
        assert all(r.launched_at in finishes for r in waited)

    def test_impossible_shape_is_rejected_not_queued(self):
        reqs = [_req(0, groups=4)]  # 20 tiles > 16-tile mesh
        result = ServeScheduler(_small_fabric()).run(reqs)
        assert result.requests[0].state == REJECTED
        assert 'mesh has 16' in result.requests[0].error

    def test_fragmentation_is_distinguished_from_capacity(self):
        sched = ServeScheduler(_small_fabric())
        a = sched.allocator
        r1 = a.alloc(5)
        r2 = a.alloc(5)
        a.alloc(5)
        a.free(r2)  # free list: one 5-run hole + 1-tile tail
        assert a.alloc(6) is None
        assert a.stats.frag_failures == 1  # 6 free tiles exist, split
        assert a.alloc(7) is None
        assert a.stats.capacity_failures == 1


class TestTimeouts:
    def test_queued_timeout_expires_without_running(self):
        reqs = [_req(0, groups=3),                 # occupies 15/16 tiles
                _req(1, timeout=10)]               # can never start in time
        result = ServeScheduler(_small_fabric()).run(reqs)
        by_id = {r.req_id: r for r in result.requests}
        assert by_id[0].state == DONE
        assert by_id[1].state == TIMED_OUT
        assert 'admission queue' in by_id[1].error
        assert by_id[1].launched_at is None

    def test_running_timeout_kills_only_its_own_group(self):
        reqs = [_req(0, timeout=200),              # killed mid-kernel
                _req(1, kernel='atax')]            # must be unaffected
        result = ServeScheduler(_small_fabric()).run(reqs)
        by_id = {r.req_id: r for r in result.requests}
        assert by_id[0].state == TIMED_OUT
        assert by_id[0].error == 'timed out after 200 cycles'
        assert by_id[1].state == DONE, \
            'a neighbour timing out must not wedge the fabric'

    def test_timeout_frees_tiles_for_queued_work(self):
        # the killed request's region is reclaimed and reused
        reqs = [_req(0, groups=3, timeout=300),
                _req(1, groups=3, arrival=1)]      # needs the same tiles
        result = ServeScheduler(_small_fabric()).run(reqs)
        by_id = {r.req_id: r for r in result.requests}
        assert by_id[0].state == TIMED_OUT
        assert by_id[1].state == DONE
        assert by_id[1].launched_at >= 300

    def test_report_counts_timeouts(self):
        reqs = [_req(0, groups=3), _req(1, timeout=10)]
        result = ServeScheduler(_small_fabric()).run(reqs)
        doc = build_serve_report(result)
        assert doc['summary']['timed_out'] == 1
        assert doc['summary']['completed'] == 1
        rec = [r for r in doc['requests'] if r['req_id'] == 1][0]
        assert rec['state'] == TIMED_OUT and 'error' in rec
