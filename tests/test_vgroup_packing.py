"""Property tests for group packing: no overlap, explicit idle accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.vgroup import (mesh_adjacent, plan_groups, plan_groups_in,
                               plan_packing, serpentine_order, utilization)


class TestPlanPacking:
    @given(st.integers(2, 10), st.integers(2, 10), st.integers(1, 20))
    @settings(max_examples=80, deadline=None)
    def test_groups_never_overlap_never_exceed_mesh(self, w, h, lanes):
        plan = plan_packing(w, h, lanes)
        seen = set()
        for g in plan.groups:
            assert len(g.tiles) == lanes + 1
            for t in g.tiles:
                assert 0 <= t < w * h, 'tile outside the mesh'
                assert t not in seen, 'tile assigned to two groups'
                seen.add(t)
        assert seen.isdisjoint(plan.idle_tiles)
        assert len(seen) + len(plan.idle_tiles) == w * h

    @given(st.integers(2, 10), st.integers(2, 10), st.integers(1, 20))
    @settings(max_examples=80, deadline=None)
    def test_group_tiles_are_serpentine_adjacent(self, w, h, lanes):
        plan = plan_packing(w, h, lanes)
        for g in plan.groups:
            for a, b in zip(g.tiles, g.tiles[1:]):
                assert mesh_adjacent(a, b, w), \
                    f'inet link {a}->{b} not mesh-adjacent'

    @given(st.integers(2, 10), st.integers(2, 10), st.integers(1, 20))
    @settings(max_examples=80, deadline=None)
    def test_leftover_accounting(self, w, h, lanes):
        plan = plan_packing(w, h, lanes)
        # without a cap, the only idle tiles are the serpentine tail too
        # short for one more group
        assert len(plan.leftover_tiles) == (w * h) % (lanes + 1)
        assert plan.capped_tiles == ()
        assert sorted(plan.idle_tiles) == sorted(plan.leftover_tiles)
        assert plan.utilization == 1.0 - len(plan.idle_tiles) / (w * h)

    @given(st.integers(2, 10), st.integers(2, 10), st.integers(1, 20),
           st.integers(0, 8))
    @settings(max_examples=80, deadline=None)
    def test_cap_accounting(self, w, h, lanes, cap):
        plan = plan_packing(w, h, lanes, max_groups=cap)
        assert len(plan.groups) <= cap
        # idle splits exactly into the tail remainder and cap victims
        assert set(plan.idle_tiles) == \
            set(plan.leftover_tiles) | set(plan.capped_tiles)
        assert set(plan.leftover_tiles).isdisjoint(plan.capped_tiles)
        for g in plan.groups:
            assert g.total_groups == len(plan.groups)

    def test_total_groups_scopes_csr(self):
        plan = plan_packing(8, 8, 4, max_groups=3)
        assert all(g.total_groups == 3 for g in plan.groups)

    def test_lanes_zero_rejected(self):
        with pytest.raises(ValueError):
            plan_packing(4, 4, 0)

    def test_classic_view_unchanged(self):
        groups, idle = plan_groups(8, 8, 4)
        assert len(groups) == 12 and len(idle) == 4
        assert abs(utilization(8, 8, 4) - 0.94) < 0.01


class TestPlanGroupsIn:
    @given(st.integers(2, 8), st.integers(2, 8),
           st.integers(0, 20), st.integers(2, 30), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_region_carving_is_exact(self, w, h, start, length, lanes):
        order = serpentine_order(w, h)
        region = order[start:start + length]
        groups, leftover = plan_groups_in(region, lanes)
        used = [t for g in groups for t in g.tiles]
        # groups use exactly the region prefix, in path order
        assert used == region[:len(used)]
        assert leftover == region[len(used):]
        assert len(leftover) == len(region) % (lanes + 1)
        for g in groups:
            assert len(g.tiles) == lanes + 1
            assert g.total_groups == len(groups)
            for a, b in zip(g.tiles, g.tiles[1:]):
                assert mesh_adjacent(a, b, w)

    def test_matches_mesh_prefix_planning(self):
        """A serpentine-prefix region carves exactly like plan_groups —
        the property the isolated-reference equivalence rests on."""
        order = serpentine_order(8, 8)
        mesh_groups, _ = plan_groups(8, 8, 4, max_groups=3)
        region_groups, _ = plan_groups_in(order[:15], 4, max_groups=3)
        assert [g.tiles for g in mesh_groups] == \
            [g.tiles for g in region_groups]
