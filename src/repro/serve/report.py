"""The serving report: schema, build, validate, render, store.

A serving report is the request-trace analogue of the per-run report in
:mod:`repro.telemetry.report`: a versioned, schema-checked JSON artifact
with per-request latency records and fleet-level aggregates, suitable for
CI gating ("zero failed requests") and archival in the
:class:`~repro.jobs.ResultStore` (under a ``serve-`` key prefix so
serving latencies can never be confused with isolated-run results).
"""

from __future__ import annotations

import hashlib
import json
from typing import List, Optional

from ..observe import BREAKDOWN_PHASES, SLO_SECTION_SCHEMA, \
    merge_breakdowns
from ..telemetry.report import (ReportValidationError, _generated,
                                check_schema)
from .request import DONE, FAILED, KernelRequest, REJECTED, TIMED_OUT
from .scheduler import ServeResult

SERVE_SCHEMA_VERSION = 1
SERVE_REPORT_KIND = 'repro-serve-report'

_COUNTER = {'type': 'integer', 'minimum': 0}
_NUMBER = {'type': 'number'}

#: the per-request phase breakdown (exact: phases sum to latency)
BREAKDOWN_SCHEMA = {
    'type': 'object',
    'required': list(BREAKDOWN_PHASES),
    'properties': {p: _COUNTER for p in BREAKDOWN_PHASES},
}

REQUEST_RECORD_SCHEMA = {
    'type': 'object',
    'required': ['req_id', 'kernel', 'lanes', 'groups', 'priority',
                 'arrival', 'state'],
    'properties': {
        'req_id': _COUNTER,
        'kernel': {'type': 'string'},
        'params': {'type': 'object'},
        'lanes': {'type': 'integer', 'minimum': 1},
        'groups': {'type': 'integer', 'minimum': 1},
        'tiles': {'type': 'integer', 'minimum': 2},
        'priority': {'type': 'integer'},
        'arrival': _COUNTER,
        'timeout': {'type': 'integer'},
        'state': {'type': 'string',
                  'enum': [DONE, FAILED, TIMED_OUT, REJECTED]},
        'launched_at': _COUNTER,
        'finished_at': _COUNTER,
        'queue_wait': _COUNTER,
        'service_cycles': _COUNTER,
        'latency': _COUNTER,
        'instrs': _COUNTER,
        'error': {'type': 'string'},
        'breakdown': BREAKDOWN_SCHEMA,
    },
}

SERVE_REPORT_SCHEMA = {
    'type': 'object',
    'required': ['schema_version', 'kind', 'generated', 'trace',
                 'summary', 'allocator', 'requests'],
    'properties': {
        'schema_version': {'type': 'integer',
                           'enum': [SERVE_SCHEMA_VERSION]},
        'kind': {'type': 'string', 'enum': [SERVE_REPORT_KIND]},
        'generated': {
            'type': 'object',
            'required': ['git_sha', 'timestamp', 'python'],
            'properties': {
                'git_sha': {'type': 'string'},
                'timestamp': {'type': 'string'},
                'python': {'type': 'string'},
            },
        },
        'trace': {
            'type': 'object',
            'required': ['key', 'n_requests'],
            'properties': {
                'key': {'type': 'string'},
                'n_requests': _COUNTER,
                'seed': {'type': 'integer'},
            },
        },
        'summary': {
            'type': 'object',
            'required': ['makespan_cycles', 'completed', 'failed',
                         'timed_out', 'rejected', 'throughput_per_mcycle',
                         'peak_concurrent_jobs', 'peak_queue_depth'],
            'properties': {
                'makespan_cycles': _COUNTER,
                'completed': _COUNTER,
                'failed': _COUNTER,
                'timed_out': _COUNTER,
                'rejected': _COUNTER,
                'throughput_per_mcycle': _NUMBER,
                'peak_concurrent_jobs': _COUNTER,
                'peak_queue_depth': _COUNTER,
                'latency_mean': _NUMBER,
                'latency_p50': _NUMBER,
                'latency_p95': _NUMBER,
                'latency_p99': _NUMBER,
                'queue_wait_mean': _NUMBER,
                'total_instrs': _COUNTER,
                'tile_utilization': _NUMBER,
                'breakdown_totals': BREAKDOWN_SCHEMA,
            },
        },
        'allocator': {
            'type': 'object',
            'required': ['allocs', 'frees', 'frag_failures',
                         'capacity_failures', 'peak_tiles_busy'],
            'properties': {
                'allocs': _COUNTER,
                'frees': _COUNTER,
                'frag_failures': _COUNTER,
                'capacity_failures': _COUNTER,
                'peak_tiles_busy': _COUNTER,
            },
        },
        'requests': {'type': 'array', 'items': REQUEST_RECORD_SCHEMA},
        'slo': SLO_SECTION_SCHEMA,
        'observability': {
            'type': 'object',
            'required': ['snapshots', 'metrics', 'heatmaps'],
            'properties': {
                'snapshots': _COUNTER,
                'metrics': {'type': 'object'},
                'heatmaps': {'type': 'object'},
            },
        },
    },
}


def trace_key(requests: List[KernelRequest], mesh: str = '') -> str:
    """Content-addressed store key for a trace (``serve-`` prefixed)."""
    canon = json.dumps([r.to_dict() for r in requests], sort_keys=True)
    digest = hashlib.sha256((mesh + canon).encode()).hexdigest()[:16]
    return f'serve-{digest}'


def _percentile(values: List[int], q: float) -> float:
    if not values:
        return 0.0
    xs = sorted(values)
    idx = min(len(xs) - 1, int(round(q * (len(xs) - 1))))
    return float(xs[idx])


def build_serve_report(result: ServeResult,
                       seed: Optional[int] = None,
                       mesh: str = '',
                       slo=None,
                       observe=None) -> dict:
    """Assemble (and validate) the serving report document.

    ``slo`` is an optional :class:`~repro.observe.SloPolicy` evaluated
    against the summary into a schema-checked ``slo`` section;
    ``observe`` an optional :class:`~repro.observe.ObservePlane` whose
    metrics + heatmaps land in an ``observability`` section.
    """
    reqs = result.requests
    counts = result.by_state()
    latencies = [r.latency for r in reqs
                 if r.state == DONE and r.latency is not None]
    waits = [r.queue_wait for r in reqs
             if r.queue_wait is not None]
    makespan = result.makespan
    records = []
    for r in reqs:
        rec = {'req_id': r.req_id, 'kernel': r.kernel,
               'params': {k: int(v) for k, v in r.params.items()},
               'lanes': r.lanes, 'groups': r.groups,
               'tiles': r.tiles_needed, 'priority': r.priority,
               'arrival': r.arrival, 'state': r.state,
               'instrs': int(r.instrs)}
        if r.timeout is not None:
            rec['timeout'] = r.timeout
        if r.launched_at is not None:
            rec['launched_at'] = r.launched_at
            rec['queue_wait'] = r.queue_wait
        if r.finished_at is not None:
            rec['finished_at'] = r.finished_at
            rec['latency'] = r.latency
        if r.service_cycles is not None:
            rec['service_cycles'] = r.service_cycles
        if r.error is not None:
            rec['error'] = r.error
        if r.breakdown is not None:
            rec['breakdown'] = dict(r.breakdown)
        records.append(rec)
    busy = sum(r.tiles_needed * r.service_cycles for r in reqs
               if r.service_cycles is not None)
    summary = {
        'makespan_cycles': makespan,
        'completed': counts.get(DONE, 0),
        'failed': counts.get(FAILED, 0),
        'timed_out': counts.get(TIMED_OUT, 0),
        'rejected': counts.get(REJECTED, 0),
        'throughput_per_mcycle': (counts.get(DONE, 0) * 1e6 / makespan
                                  if makespan else 0.0),
        'peak_concurrent_jobs': result.peak_concurrent_jobs,
        'peak_queue_depth': result.peak_queue_depth,
        'latency_mean': (sum(latencies) / len(latencies)
                         if latencies else 0.0),
        'latency_p50': _percentile(latencies, 0.50),
        'latency_p95': _percentile(latencies, 0.95),
        'latency_p99': _percentile(latencies, 0.99),
        'queue_wait_mean': sum(waits) / len(waits) if waits else 0.0,
        'tile_utilization': (busy / (result.num_tiles * makespan)
                             if result.num_tiles and makespan else 0.0),
    }
    if result.merged_stats is not None:
        summary['total_instrs'] = result.merged_stats.total_instrs
    breakdowns = [r.breakdown for r in reqs if r.breakdown is not None]
    if breakdowns:
        # phase totals including the unattributed residual — never
        # silently dropped in aggregation
        summary['breakdown_totals'] = merge_breakdowns(breakdowns)
    st = result.alloc_stats
    doc = {
        'schema_version': SERVE_SCHEMA_VERSION,
        'kind': SERVE_REPORT_KIND,
        'generated': _generated(),
        'trace': {'key': trace_key(reqs, mesh),
                  'n_requests': len(reqs)},
        'summary': summary,
        'allocator': {'allocs': st.allocs, 'frees': st.frees,
                      'frag_failures': st.frag_failures,
                      'capacity_failures': st.capacity_failures,
                      'peak_tiles_busy': st.peak_tiles_busy},
        'requests': records,
    }
    if seed is not None:
        doc['trace']['seed'] = seed
    if slo is not None:
        doc['slo'] = slo.evaluate(summary)
    if observe is not None:
        doc['observability'] = observe.report_dict()
    validate_serve_report(doc)
    return doc


def validate_serve_report(doc: dict) -> None:
    errors = check_schema(doc, SERVE_REPORT_SCHEMA)
    if errors:
        raise ReportValidationError('; '.join(errors[:20]))


def load_serve_report(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    validate_serve_report(doc)
    return doc


def store_serve_report(store, doc: dict) -> str:
    """Persist a serving report in a ResultStore; returns its key."""
    key = doc['trace']['key']
    store.put_doc(key, doc)
    return key


def render_serve_report(doc: dict) -> str:
    """Human-readable per-request table + summary."""
    s = doc['summary']
    lines = [f'serving report ({doc["trace"]["n_requests"]} requests, '
             f'trace {doc["trace"]["key"]})',
             f'{"id":>4} {"kernel":10} {"shape":>7} {"prio":>4} '
             f'{"arrival":>9} {"wait":>8} {"service":>9} {"latency":>9} '
             f'state']
    for r in doc['requests']:
        shape = f'{r["groups"]}xV{r["lanes"]}'
        lines.append(
            f'{r["req_id"]:>4} {r["kernel"]:10} {shape:>7} '
            f'{r["priority"]:>4} {r["arrival"]:>9} '
            f'{r.get("queue_wait", "-"):>8} '
            f'{r.get("service_cycles", "-"):>9} '
            f'{r.get("latency", "-"):>9} {r["state"]}')
    lines.append(
        f'makespan {s["makespan_cycles"]} cycles; '
        f'{s["completed"]} done / {s["failed"]} failed / '
        f'{s["timed_out"]} timed-out / {s["rejected"]} rejected; '
        f'throughput {s["throughput_per_mcycle"]:.2f} req/Mcycle')
    lines.append(
        f'latency mean {s["latency_mean"]:.0f} p50 {s["latency_p50"]:.0f} '
        f'p95 {s["latency_p95"]:.0f}; peak {s["peak_concurrent_jobs"]} '
        f'concurrent job(s), queue depth {s["peak_queue_depth"]}')
    a = doc['allocator']
    lines.append(
        f'allocator: {a["allocs"]} allocs, {a["frag_failures"]} '
        f'fragmentation stalls, {a["capacity_failures"]} capacity '
        f'stalls, peak {a["peak_tiles_busy"]} tiles busy')
    totals = s.get('breakdown_totals')
    if totals:
        grand = sum(totals.values()) or 1
        lines.append('cycle attribution (all completed requests): ' +
                     '  '.join(f'{phase} {v} ({v * 100 // grand}%)'
                               for phase, v in totals.items()))
    if 'slo' in doc:
        from ..observe import render_slo
        lines.append(render_slo(doc['slo']))
    return '\n'.join(lines)
