"""The benchmark suite registry (paper Table 2, plus bfs from Section 6.6)."""

from __future__ import annotations

from typing import Dict, List, Type

from .atax import Atax
from .base import Benchmark
from .bfs import Bfs
from .bicg import Bicg
from .conv2d import Conv2d
from .conv3d import Conv3d
from .correlation import Corr, Covar
from .fdtd2d import Fdtd2d
from .gemm import Gemm
from .gesummv import Gesummv
from .gramschm import Gramschm
from .mm2 import Mm2
from .mm3 import Mm3
from .mvt import Mvt
from .syr2k import Syr2k
from .syrk import Syrk

#: All 15 PolyBench/GPU applications, in the paper's figure order.
POLYBENCH: List[Type[Benchmark]] = [
    Conv2d, Mm2, Conv3d, Mm3, Atax, Bicg, Corr, Covar, Fdtd2d, Gemm,
    Gesummv, Gramschm, Mvt, Syr2k, Syrk,
]

#: The irregular counter-example (Section 6.6).
IRREGULAR: List[Type[Benchmark]] = [Bfs]

ALL: List[Type[Benchmark]] = POLYBENCH + IRREGULAR

BY_NAME: Dict[str, Type[Benchmark]] = {cls.name: cls for cls in ALL}

#: Benchmarks the paper modified to exploit longer cache lines (Section 6.6,
#: "Long cache lines").
LONG_LINE_SET = ['2dconv', 'fdtd-2d', 'gesummv', 'syr2k', 'syrk']


def make(name: str) -> Benchmark:
    """Instantiate a benchmark by its paper name."""
    return BY_NAME[name]()
