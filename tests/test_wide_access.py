"""Tests for wide vector-load expansion (paper Sections 2.3.2 / 3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.wide_access import (VloadError, expand_vload, recipients,
                                    total_words)
from repro.isa import VL_ALIGNED, VL_GROUP, VL_PREFIX, VL_SELF, VL_SINGLE, \
    VL_SUFFIX

LANES = [11, 12, 13, 14]
LINE = 16


class TestRecipients:
    def test_self_targets_requester(self):
        assert recipients(VL_SELF, 0, LANES, 99) == [99]

    def test_self_works_without_group(self):
        assert recipients(VL_SELF, 0, [], 7) == [7]

    def test_single_picks_one_lane(self):
        assert recipients(VL_SINGLE, 2, LANES, 99) == [13]

    def test_group_from_offset(self):
        assert recipients(VL_GROUP, 0, LANES, 99) == LANES
        assert recipients(VL_GROUP, 1, LANES, 99) == LANES[1:]

    def test_group_without_lanes_raises(self):
        with pytest.raises(VloadError):
            recipients(VL_GROUP, 0, [], 7)

    def test_bad_core_off_raises(self):
        with pytest.raises(VloadError):
            recipients(VL_SINGLE, 4, LANES, 99)


class TestAlignedExpansion:
    def test_group_load_scatters_line(self):
        """Paper Figure 5 (right): group load of fetch width 2."""
        start, chunks = expand_vload(addr=32, spad_off=100, core_off=0,
                                     width=4, variant=VL_GROUP,
                                     part=VL_ALIGNED, lanes=LANES,
                                     requester=99, line_words=LINE)
        assert start == 32
        assert chunks == [(32, 4, 11, 100), (36, 4, 12, 100),
                          (40, 4, 13, 100), (44, 4, 14, 100)]
        assert total_words(chunks) == 16

    def test_single_load_one_core(self):
        """Paper Figure 5 (left): single load."""
        start, chunks = expand_vload(32, 100, 2, 4, VL_SINGLE, VL_ALIGNED,
                                     LANES, 99, LINE)
        assert chunks == [(32, 4, 13, 100)]

    def test_self_load_full_line(self):
        start, chunks = expand_vload(64, 0, 0, 16, VL_SELF, VL_ALIGNED,
                                     [], 7, LINE)
        assert chunks == [(64, 16, 7, 0)]

    def test_aligned_spanning_lines_rejected(self):
        with pytest.raises(VloadError, match='spans'):
            expand_vload(40, 0, 0, 4, VL_GROUP, VL_ALIGNED, LANES, 99, LINE)

    def test_zero_width_rejected(self):
        with pytest.raises(VloadError):
            expand_vload(0, 0, 0, 0, VL_GROUP, VL_ALIGNED, LANES, 99, LINE)


class TestUnalignedPairs:
    def test_prefix_plus_suffix_covers_everything(self):
        addr = 42  # 10 words into line 2 of 16-word lines
        pre = expand_vload(addr, 0, 0, 4, VL_GROUP, VL_PREFIX, LANES, 99,
                           LINE)
        suf = expand_vload(addr, 0, 0, 4, VL_GROUP, VL_SUFFIX, LANES, 99,
                           LINE)
        _, pre_chunks = pre
        _, suf_chunks = suf
        # the prefix covers the 6 remaining words of line 2
        assert total_words(pre_chunks) == 6
        assert total_words(suf_chunks) == 10
        # each part touches exactly one line
        for a, c, _, _ in pre_chunks:
            assert (a // LINE) == (addr // LINE)
        for a, c, _, _ in suf_chunks:
            assert ((a + c - 1) // LINE) == (addr // LINE) + 1

    def test_aligned_pair_suffix_is_noop(self):
        suf = expand_vload(32, 0, 0, 4, VL_GROUP, VL_SUFFIX, LANES, 99, LINE)
        assert suf is None
        pre = expand_vload(32, 0, 0, 4, VL_GROUP, VL_PREFIX, LANES, 99, LINE)
        assert total_words(pre[1]) == 16

    def test_chunk_destinations_preserved_across_split(self):
        """Word k goes to lane k//width at offset spad + k%width regardless
        of how the prefix/suffix split falls."""
        addr = 45
        got = {}
        for part in (VL_PREFIX, VL_SUFFIX):
            exp = expand_vload(addr, 200, 0, 4, VL_GROUP, part, LANES, 99,
                               LINE)
            if exp is None:
                continue
            for a, c, core, off in exp[1]:
                for i in range(c):
                    got[a + i] = (core, off + i)
        for k in range(16):
            assert got[addr + k] == (LANES[k // 4], 200 + k % 4)


class TestExpansionProperties:
    @given(addr=st.integers(0, 200), width=st.integers(1, 8),
           nlanes=st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_pair_partition_is_exact(self, addr, width, nlanes):
        """PREFIX + SUFFIX always partition [addr, addr+total) exactly."""
        lanes = LANES[:nlanes]
        total = width * nlanes
        if total > LINE:
            return
        covered = []
        for part in (VL_PREFIX, VL_SUFFIX):
            exp = expand_vload(addr, 0, 0, width, VL_GROUP, part, lanes, 99,
                               LINE)
            if exp is not None:
                for a, c, _, _ in exp[1]:
                    covered.extend(range(a, a + c))
        assert sorted(covered) == list(range(addr, addr + total))

    @given(addr=st.integers(0, 200), width=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_self_prefix_suffix_single_line_each(self, addr, width):
        for part in (VL_PREFIX, VL_SUFFIX):
            exp = expand_vload(addr, 0, 0, width, VL_SELF, part, [], 5, LINE)
            if exp is None:
                continue
            lines = set()
            for a, c, _, _ in exp[1]:
                lines.update({(a + i) // LINE for i in range(c)})
            assert len(lines) == 1
