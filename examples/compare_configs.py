#!/usr/bin/env python3
"""Compare Table 3 configurations on one PolyBench kernel.

Runs a benchmark (default: bicg, one of the paper's best cases for
software-defined vectors) under the manycore baselines, the vector
configurations, and the GPU model, verifying each result against numpy and
printing cycles / fetches / energy.

Run:  python examples/compare_configs.py [benchmark] [scale]
      python examples/compare_configs.py gemm bench
"""

import sys

from repro.harness import run_benchmark
from repro.kernels import registry

CONFIGS = ['NV', 'NV_PF', 'PCV_PF', 'V4', 'V4_PCV', 'V16', 'GPU']


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else 'bicg'
    scale = sys.argv[2] if len(sys.argv) > 2 else 'bench'
    bench = registry.make(name)
    params = bench.params_for('test' if scale == 'test' else 'bench')
    print(f'benchmark: {name}  params: {params}')
    print(f'{"config":10s} {"cycles":>9s} {"speedup":>8s} {"instrs":>9s} '
          f'{"fetches":>9s} {"energy":>10s}')

    base = None
    for cfg in CONFIGS:
        if name in ('gramschm', 'bfs') and cfg.endswith('PCV'):
            continue  # no SIMD variant (paper Table 2 footnote)
        r = run_benchmark(bench, cfg, params)
        if base is None:
            base = r.cycles
        energy = (f'{r.energy.on_chip_total / 1e6:8.2f}uJ'
                  if r.energy else '       -')
        print(f'{cfg:10s} {r.cycles:9d} {base / r.cycles:7.2f}x '
              f'{r.instrs:9d} {r.icache_accesses:9d} {energy}')
    print('\nall configurations verified against the numpy reference')


if __name__ == '__main__':
    main()
