"""Tests for the configuration registry, runner, and figure plumbing."""

import pytest

from repro.harness import CONFIGS, META_CONFIGS, RunResult, get, \
    run_benchmark
from repro.harness.configs import LONG_LINE_BYTES
from repro.harness.figures import ResultCache, Series, amean, cpi_stack, \
    geomean
from repro.kernels import registry
from repro.manycore import DEFAULT_CONFIG, small_config


class TestConfigRegistry:
    def test_table3_members_present(self):
        for name in ('NV', 'NV_PF', 'PCV_PF', 'V4', 'V16', 'V4_PCV',
                     'V16_PCV', 'V4_LL_PCV', 'V16_LL', 'V16_LL_PCV',
                     'GPU'):
            assert name in CONFIGS

    def test_long_lines_scale_machine(self):
        m = get('V16_LL').machine()
        assert m.cache_line_bytes == LONG_LINE_BYTES
        assert get('V16').machine().cache_line_bytes == 64

    def test_meta_config_lookup(self):
        m = get('BEST_V')
        assert set(m.members) == {'V4', 'V16'}

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            get('V99')

    def test_flags_match_table3(self):
        assert not CONFIGS['NV'].prefetch
        assert CONFIGS['NV_PF'].prefetch and not CONFIGS['NV_PF'].pcv
        assert CONFIGS['PCV_PF'].pcv
        assert CONFIGS['V4'].lanes == 4 and CONFIGS['V16'].lanes == 16


class TestRunner:
    def test_meta_config_picks_fastest(self):
        bench = registry.make('gemm')
        r = run_benchmark(bench, 'BEST_V', bench.test_params,
                          base_machine=small_config())
        v4 = run_benchmark(bench, 'V4', bench.test_params,
                           base_machine=small_config())
        v16 = run_benchmark(bench, 'V16', bench.test_params,
                            base_machine=small_config(mesh=6))
        assert r.config == 'BEST_V'
        assert r.cycles <= v4.cycles

    def test_energy_attached(self):
        bench = registry.make('gemm')
        r = run_benchmark(bench, 'NV', bench.test_params,
                          base_machine=small_config())
        assert r.energy is not None
        assert r.energy.on_chip_total > 0

    def test_verification_catches_wrong_results(self):
        """Corrupting an expected output must fail verification."""
        import numpy as np
        bench = registry.make('gemm')

        orig = bench.expected

        def bad_expected(ws, params):
            out = orig(ws, params)
            out['C'] = out['C'] + 1.0
            return out

        bench.expected = bad_expected
        with pytest.raises(AssertionError):
            run_benchmark(bench, 'NV', bench.test_params,
                          base_machine=small_config())


class TestFigurePlumbing:
    def test_geomean_and_amean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert amean([1, 3]) == 2.0
        assert geomean([]) == 0.0

    def test_series_render_and_mean(self):
        s = Series('t', ['A', 'B'])
        s.add('x', 'A', 1.0)
        s.add('x', 'B', 4.0)
        s.add('y', 'A', 1.0)
        s.add('y', 'B', 1.0)
        text = s.render()
        assert 'GeoMean' in text and 't' in text
        assert s.mean_row()['B'] == pytest.approx(2.0)

    def test_series_handles_missing_cells(self):
        s = Series('t', ['A', 'B'])
        s.add('x', 'A', 1.0)
        assert '-' in s.render()
        assert s.mean_row()['B'] == 0.0

    def test_result_cache_memoizes(self):
        cache = ResultCache(scale='test')
        r1 = cache.run('gemm', 'NV')
        r2 = cache.run('gemm', 'NV')
        assert r1 is r2
        r3 = cache.run('gemm', 'NV', active_cores=(0, 1))
        assert r3 is not r1

    def test_cpi_stack_totals(self):
        cache = ResultCache(scale='test')
        r = cache.run('gemm', 'NV_PF')
        stack = cpi_stack(r)
        assert stack['issued'] == 1.0
        assert all(v >= 0 for v in stack.values())
