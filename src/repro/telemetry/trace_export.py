"""Chrome trace-event JSON export, loadable in Perfetto (ui.perfetto.dev).

One simulated cycle maps to one microsecond of trace time (Perfetto's
track viewer is happiest in us).  Layout:

* one track (``tid``) per core, named ``c03 [scalar]`` after the most
  privileged role the core held during the run (scalar > expander >
  vector > independent), so vector-group structure is visible at a
  glance;
* issued instructions (from an attached debug ``Tracer``) as 1-cycle
  complete events, microthread lifetimes as enclosing complete events
  on the expander/lane tracks;
* DAE frame occupancy and LLC wide-access service windows as async
  (``b``/``e``) events, since several frames are open concurrently and
  async events may overlap freely;
* interval samples as Perfetto counter tracks (``C`` events): the CPI
  stack causes, LLC occupancy, and DRAM backlog over time.

The format is the documented Trace Event JSON object form:
``{"traceEvents": [...], "displayTimeUnit": "ms"}``.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..core.vgroup import (ROLE_EXPANDER, ROLE_INDEPENDENT, ROLE_NAMES,
                           ROLE_SCALAR, ROLE_VECTOR)
from ..core.wide_access import chunks_per_core
from .spans import CAT_MICROTHREAD

#: pid used for every fabric track (one simulated process).
PID = 0

#: role priority for naming a core's track (higher wins)
_ROLE_RANK = {ROLE_INDEPENDENT: 0, ROLE_VECTOR: 1, ROLE_EXPANDER: 2,
              ROLE_SCALAR: 3}


def _core_roles(tracer, telemetry) -> dict:
    """Best-known role per core, from trace entries and span categories."""
    roles: dict = {}

    def bump(core, role):
        if core not in roles or _ROLE_RANK[role] > _ROLE_RANK[roles[core]]:
            roles[core] = role

    if tracer is not None:
        for e in tracer.entries:
            bump(e.core, e.mode)
    if telemetry is not None:
        for s in telemetry.spans.spans:
            if s.cat == CAT_MICROTHREAD:
                bump(s.core, ROLE_EXPANDER)
    return roles


def to_chrome_trace(tracer=None, telemetry=None,
                    fabric=None) -> dict:
    """Build the trace document from any subset of the three sources."""
    events: List[dict] = []
    roles = _core_roles(tracer, telemetry)
    if fabric is not None:
        # prefer the fabric's final role assignment where it is specific
        for t in fabric.tiles:
            if t.mode != ROLE_INDEPENDENT:
                roles[t.core_id] = t.mode

    serve_spans = list(getattr(fabric, 'serve_spans', None) or [])

    cores = set(roles)
    if tracer is not None:
        cores.update(e.core for e in tracer.entries)
    if telemetry is not None:
        cores.update(s.core for s in telemetry.spans.spans)
    for span in serve_spans:
        cores.update(span['cores'])

    for core in sorted(cores):
        role = ROLE_NAMES[roles.get(core, ROLE_INDEPENDENT)]
        events.append({'ph': 'M', 'pid': PID, 'tid': core,
                       'name': 'thread_name',
                       'args': {'name': f'c{core:02d} [{role}]'}})
        events.append({'ph': 'M', 'pid': PID, 'tid': core,
                       'name': 'thread_sort_index',
                       'args': {'sort_index': core}})
    events.append({'ph': 'M', 'pid': PID, 'tid': 0, 'name': 'process_name',
                   'args': {'name': 'repro fabric'}})

    # -- serving spans: request occupancy annotated on every owned core ------
    # Async (b/e) events, one per (request, core), so a core's track shows
    # which request and vector group occupied it over time; ends are left
    # open-ended at the final cycle for requests killed mid-flight.
    for span in serve_spans:
        end = span['end']
        if end is None:
            end = (fabric.cycle if fabric is not None else span['start']) + 1
        for core, group_id in sorted(span['cores'].items()):
            common = {'pid': PID, 'tid': core, 'cat': 'request',
                      'name': f'req{span["request"]}:{span["kernel"]} '
                              f'g{group_id}',
                      'id': f'request-{span["request"]}-c{core}'}
            args = {'request': span['request'], 'job': span['job'],
                    'kernel': span['kernel'], 'group': group_id}
            if span.get('trace_id') is not None:
                # same correlation id the fleet-level merged trace uses
                args['trace_id'] = span['trace_id']
            events.append({'ph': 'b', 'ts': span['start'],
                           'args': args, **common})
            events.append({'ph': 'e', 'ts': max(end, span['start'] + 1),
                           **common})

    # -- microthread spans first so instruction events nest inside them ------
    if telemetry is not None:
        next_async = 0
        for s in telemetry.spans.spans:
            args = dict(s.args) if s.args else {}
            args['core'] = s.core
            chunks = args.pop('chunks', None)
            if chunks:
                args['per_core_words'] = {
                    str(c): w for c, w in chunks_per_core(chunks).items()}
            if s.cat == CAT_MICROTHREAD:
                events.append({'ph': 'X', 'pid': PID, 'tid': s.core,
                               'ts': s.start, 'dur': max(1, s.duration),
                               'name': s.name, 'cat': s.cat, 'args': args})
            else:
                next_async += 1
                ident = f'{s.cat}-{next_async}'
                common = {'pid': PID, 'tid': s.core, 'cat': s.cat,
                          'name': s.name, 'id': ident}
                events.append({'ph': 'b', 'ts': s.start, 'args': args,
                               **common})
                events.append({'ph': 'e', 'ts': max(s.end, s.start + 1),
                               **common})

    # -- issued instructions --------------------------------------------------
    if tracer is not None:
        for e in tracer.entries:
            events.append({'ph': 'X', 'pid': PID, 'tid': e.core,
                           'ts': e.cycle, 'dur': 1,
                           'name': e.text.split()[0], 'cat': 'instr',
                           'args': {'asm': e.text,
                                    'role': ROLE_NAMES.get(e.mode, '?')}})

    # -- interval samples as counter tracks -----------------------------------
    if telemetry is not None and telemetry.sampler is not None:
        for s in telemetry.sampler.samples:
            if s.stalls or s.issued:
                stack = {'issued': s.issued}
                stack.update(s.stalls)
                events.append({'ph': 'C', 'pid': PID, 'ts': s.cycle,
                               'name': 'cpi_stack', 'args': stack})
            events.append({'ph': 'C', 'pid': PID, 'ts': s.cycle,
                           'name': 'llc_occupancy',
                           'args': {'lines': s.llc_lines}})
            events.append({'ph': 'C', 'pid': PID, 'ts': s.cycle,
                           'name': 'dram_backlog',
                           'args': {'cycles': s.dram_backlog}})

    return {'traceEvents': events, 'displayTimeUnit': 'ms',
            'otherData': {'producer': 'repro.telemetry',
                          'time_unit': '1us == 1 cycle'}}


def write_chrome_trace(path: str, tracer=None, telemetry=None,
                       fabric=None) -> dict:
    """Serialize the trace document to ``path``; returns the document."""
    doc = to_chrome_trace(tracer=tracer, telemetry=telemetry, fabric=fabric)
    with open(path, 'w') as f:
        json.dump(doc, f)
    return doc
