"""3dconv: 27-tap convolution over a volume.

The (plane, row) output space is flattened so the 2D row-stencil templates
apply: output "row" r = p*N + i, and an input tap at (p+dp, i+di) is just a
row shift of dp*N + di.  Boundary planes/rows are masked via the templates'
``row_valid`` modular check.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..isa import Program
from ..manycore import Fabric
from . import refs
from .base import Benchmark, VectorParams, Workspace
from .codegen import MimdKernelBuilder
from .mimd_templates import mimd_stencil_rows
from .vector_templates import StencilSection, emit_stencil_rows


def conv3d_sections(base: int, n: int, m: int):
    sections: List[StencilSection] = []
    coeffs: List[float] = []
    for dp in (-1, 0, 1):
        w = float(refs.PLANE3D[dp + 1])
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                sections.append(StencilSection(base, m, dp * n + di, dj))
                coeffs.append(w * float(refs.C2D[di + 1, dj + 1]))
    return sections, coeffs


class Conv3d(Benchmark):
    name = '3dconv'
    test_params = {'p': 4, 'n': 4, 'm': 16}
    bench_params = {'p': 6, 'n': 8, 'm': 32}

    def setup(self, fabric: Fabric, params) -> Workspace:
        p, n, m = params['p'], params['n'], params['m']
        g = refs.rng(self.name)
        ws = Workspace()
        self.alloc_np(fabric, ws, 'A', g.random((p, n, m)))
        self.alloc_zeros(fabric, ws, 'B', p * n * m)
        return ws

    def expected(self, ws: Workspace, params) -> Dict[str, np.ndarray]:
        return {'B': refs.conv3d(ws.inputs['A'])}

    def _geometry(self, params):
        p, n = params['p'], params['n']
        row0 = n + 1                        # first interior (plane 1, row 1)
        last = (p - 1) * n - 2              # last interior (plane p-2, n-2)
        return row0, last - row0 + 1

    def build_mimd(self, fabric, ws, params, *, prefetch, pcv=False):
        p, n, m = params['p'], params['n'], params['m']
        sections, coeffs = conv3d_sections(ws.base('A'), n, m)
        row0, n_out = self._geometry(params)
        mb = MimdKernelBuilder()
        mb.add_kernel(lambda a: mimd_stencil_rows(
            a, n_out_rows=n_out, row0=row0, ncols=m, sections=sections,
            coeffs=coeffs, out_base=ws.base('B'), out_stride=m,
            jlo=1, jhi=m - 1, row_valid=(n, 1, n - 1), cfg=fabric.cfg,
            prefetch=prefetch, pcv=pcv))
        return mb.build()

    def build_vector(self, fabric, ws, params, vp: VectorParams) -> Program:
        p, n, m = params['p'], params['n'], params['m']
        sections, coeffs = conv3d_sections(ws.base('A'), n, m)
        row0, n_out = self._geometry(params)
        b = self.make_vector_builder(fabric, vp, params)
        prog = b.program()
        flen, _ = self.fitted_flen(fabric, vp.lanes, vp.pcv, m, ni=n_out,
                                   cap=4)
        emit_stencil_rows(
            prog, name='conv3d', n_out_rows=n_out, row0=row0, ncols=m,
            sections=sections, coeffs=coeffs, out_base=ws.base('B'),
            out_stride=m, jlo=1, jhi=m - 1, row_valid=(n, 1, n - 1),
            flen=flen)
        return prog.finish()

    def frame_size_for(self, fabric, lanes, pcv):
        return 27 * self.flen_for(fabric, lanes, pcv)
