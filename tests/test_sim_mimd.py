"""Integration tests: MIMD (independent-mode) execution on the fabric."""

import pytest

from repro.isa import Assembler, opcodes as op
from repro.manycore import DeadlockError, Fabric, small_config
from tests.conftest import run_single_core


class TestArithmetic:
    def test_add_chain_stores_result(self):
        def body(a):
            a.li('x5', 3)
            a.li('x6', 4)
            a.add('x7', 'x5', 'x6')
            a.li('x8', 0)       # address 0
            a.sw('x7', 'x8', 0)

        fabric, stats = run_single_core(body)
        assert fabric.memory[0] == 7

    def test_fp_pipeline(self):
        def body(a):
            a.li('f1', 3)
            a.fcvt_sw('f1', 'f1')
            a.li('f2', 2)
            a.fcvt_sw('f2', 'f2')
            a.fmul('f3', 'f1', 'f2')   # 6.0
            a.fadd('f3', 'f3', 'f1')   # 9.0
            a.fdiv('f4', 'f3', 'f2')   # 4.5
            a.li('x8', 0)
            a.sw('f4', 'x8', 0)

        fabric, _ = run_single_core(body)
        assert fabric.memory[0] == pytest.approx(4.5)

    def test_loop_sums_range(self):
        def body(a):
            a.li('x6', 0)
            with a.for_range('x5', 0, 10):
                a.add('x6', 'x6', 'x5')
            a.li('x8', 0)
            a.sw('x6', 'x8', 0)

        fabric, _ = run_single_core(body)
        assert fabric.memory[0] == 45

    def test_div_rem(self):
        def body(a):
            a.li('x5', 17)
            a.li('x6', 5)
            a.div('x7', 'x5', 'x6')
            a.rem('x8', 'x5', 'x6')
            a.li('x9', 0)
            a.sw('x7', 'x9', 0)
            a.sw('x8', 'x9', 1)

        fabric, _ = run_single_core(body)
        assert fabric.memory[0] == 3
        assert fabric.memory[1] == 2

    def test_x0_stays_zero(self):
        def body(a):
            a.li('x0', 99)
            a.li('x9', 0)
            a.sw('x0', 'x9', 0)

        fabric, _ = run_single_core(body)
        # memory starts zeroed; the store wrote x0 which must still be 0
        assert fabric.memory[0] == 0


class TestMemorySystem:
    def test_global_load_roundtrip(self):
        fabric = Fabric(small_config())
        base = fabric.alloc([10.0, 20.0, 30.0, 40.0])

        def body(a):
            a.li('x5', base)
            a.lw('f1', 'x5', 1)
            a.lw('f2', 'x5', 3)
            a.fadd('f3', 'f1', 'f2')
            a.li('x9', base)
            a.sw('f3', 'x9', 0)

        fabric, stats = run_single_core(body, fabric)
        assert fabric.memory[base] == pytest.approx(60.0)
        assert stats.mem.llc_accesses >= 3

    def test_load_latency_visible(self):
        """A dependent load chain must take at least DRAM latency."""
        fabric = Fabric(small_config())
        base = fabric.alloc([1.0] * 16)

        def body(a):
            a.li('x5', base)
            a.lw('f1', 'x5', 0)
            a.fadd('f2', 'f1', 'f1')  # depends on the load

        fabric, stats = run_single_core(body, fabric)
        assert stats.cycles >= fabric.cfg.dram_latency

    def test_llc_hit_faster_than_miss(self):
        cfg = small_config()
        cyc = {}
        for name in ('cold', 'warm'):
            fabric = Fabric(cfg)
            base = fabric.alloc([1.0] * 16)

            def body(a, warm=(name == 'warm')):
                a.li('x5', base)
                if warm:
                    a.lw('f1', 'x5', 0)
                    a.fadd('f0', 'f1', 'f1')  # wait for warmup load
                a.lw('f2', 'x5', 1)
                a.fadd('f3', 'f2', 'f2')

            _, stats = run_single_core(body, fabric)
            cyc[name] = stats.cycles
        # warm run does two loads but the second hits in LLC
        assert cyc['warm'] < 2 * cyc['cold']

    def test_load_queue_limits_mlp(self):
        """With a 2-entry load queue, >2 outstanding loads serialize."""
        cfg = small_config(load_queue_entries=2)
        fabric = Fabric(cfg)
        # spread addresses across lines/banks so they are independent misses
        base = fabric.alloc([0.0] * (16 * 8))

        def body(a):
            a.li('x5', base)
            for i in range(6):
                a.lw(f'f{i + 1}', 'x5', i * 16)
            a.fadd('f7', 'f6', 'f5')

        _, stats = run_single_core(body, fabric)
        assert stats.total('stall_loadq') > 0

    def test_store_then_load_same_line(self):
        fabric = Fabric(small_config())
        base = fabric.alloc([0.0] * 16)

        def body(a):
            a.li('x5', base)
            a.li('x6', 123)
            a.sw('x6', 'x5', 2)
            # read back after a barrier-free delay: dependent load
            a.lw('x7', 'x5', 2)
            a.sw('x7', 'x5', 3)

        fabric, _ = run_single_core(body, fabric)
        assert fabric.memory[base + 2] == 123
        assert fabric.memory[base + 3] == 123

    def test_dram_lines_counted(self):
        fabric = Fabric(small_config())
        base = fabric.alloc([0.0] * (16 * 4))

        def body(a):
            a.li('x5', base)
            for i in range(4):
                a.lw(f'f{i + 1}', 'x5', i * 16)
            a.fadd('f5', 'f4', 'f3')

        _, stats = run_single_core(body, fabric)
        assert stats.mem.dram_lines_read == 4


class TestMultiCore:
    def _spmd_store_tid(self, ncores_active=None):
        cfg = small_config()
        fabric = Fabric(cfg)
        base = fabric.alloc([0.0] * 16)
        a = Assembler()
        a.csrr('x1', op.CSR_TID)
        a.li('x5', base)
        a.add('x5', 'x5', 'x1')
        a.sw('x1', 'x5', 0)
        a.barrier()
        a.halt()
        prog = a.finish()
        active = list(range(ncores_active)) if ncores_active else None
        fabric.load_program(prog, active_cores=active)
        fabric.run()
        return fabric, base

    def test_all_cores_store_their_tid(self):
        fabric, base = self._spmd_store_tid()
        n = fabric.cfg.num_cores
        assert fabric.memory[base:base + n] == list(range(n))

    def test_subset_of_cores(self):
        fabric, base = self._spmd_store_tid(ncores_active=4)
        assert fabric.memory[base:base + 4] == [0, 1, 2, 3]
        assert fabric.memory[base + 4] == 0.0

    def test_barrier_synchronizes(self):
        """Core 1 busy-spins; core 0 waits at the barrier until it's done."""
        cfg = small_config()
        fabric = Fabric(cfg)
        base = fabric.alloc([0.0] * 16)
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.li('x9', 2)
        a.bge('x1', 'x9', 'off')
        a.beq('x1', 'x0', 'fast')
        # slow core: long loop then store flag
        a.li('x6', 1)
        with a.for_range('x5', 0, 300):
            a.nop()
        a.li('x7', base)
        a.sw('x6', 'x7', 0)
        a.barrier()
        a.halt()
        a.bind('fast')
        a.barrier()
        # after the barrier, the flag must be visible
        a.li('x7', base)
        a.lw('x8', 'x7', 0)
        a.sw('x8', 'x7', 1)
        a.halt()
        a.bind('off')
        a.halt()
        prog = a.finish()
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[base + 1] == 1

    def test_remote_scratchpad_store(self):
        cfg = small_config()
        fabric = Fabric(cfg)
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.bne('x1', 'x0', 'other')
        a.li('x5', 777)   # value
        a.li('x6', 1)     # dest core
        a.li('x7', 10)    # offset
        a.swrem('x5', 'x6', 'x7')
        a.barrier()
        a.halt()
        a.bind('other')
        a.barrier()
        a.halt()
        prog = a.finish()
        fabric.load_program(prog, active_cores=[0, 1])
        fabric.run()
        assert fabric.tiles[1].spad.data[10] == 777


class TestSimControl:
    def test_icache_accesses_counted(self):
        def body(a):
            with a.for_range('x5', 0, 50):
                a.nop()

        _, stats = run_single_core(body)
        # ~4 instructions per iteration, 50 iterations
        assert stats.total_icache_accesses > 150

    def test_branch_bubble_costs_cycles(self):
        def tight(a):
            with a.for_range('x5', 0, 100):
                a.nop()

        _, stats = run_single_core(tight)
        assert stats.total('stall_branch') >= 100  # taken back-edges

    def test_deadlock_detection(self):
        """A lone core waiting at a barrier that nobody else reaches."""
        cfg = small_config()
        fabric = Fabric(cfg)
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.bne('x1', 'x0', 'other')
        a.lw('x2', 'x0', 0)  # pending load keeps events alive briefly
        a.barrier()
        a.halt()
        a.bind('other')
        a.halt()
        prog = a.finish()
        fabric.alloc([0.0] * 16)
        fabric.load_program(prog, active_cores=[0, 1])
        # core 1 halts; core 0 blocks at barrier... but _check_barrier
        # treats halted cores as absent, so this actually completes.
        fabric.run()
        assert fabric.tiles[0].halted

    def test_true_deadlock_raises(self):
        cfg = small_config()
        fabric = Fabric(cfg)
        a = Assembler()
        # waiting on an inet message that never comes: vconfig half-group
        a.csrr('x1', op.CSR_COREID)
        a.bne('x1', 'x0', 'other')
        a.li('x5', 0)
        a.vconfig('x5')
        a.halt()
        a.bind('other')
        a.halt()
        from repro.core import GroupDescriptor
        fabric.register_group(GroupDescriptor(0, [0, 1, 2]))
        prog = a.finish()
        fabric.load_program(prog, active_cores=[0, 1])
        with pytest.raises(DeadlockError):
            fabric.run()

    def test_timeout_raises(self):
        from repro.manycore import SimulationTimeout
        cfg = small_config()
        fabric = Fabric(cfg)
        a = Assembler()
        a.bind('spin')
        a.j('spin')
        prog = a.finish()
        fabric.load_program(prog, active_cores=[0])
        with pytest.raises(SimulationTimeout):
            fabric.run(max_cycles=1000)
