"""``repro top`` — a live terminal dashboard over a serving fabric.

The dashboard rides the plane's snapshot callback: every time the
:class:`~repro.observe.ObservePlane` takes a periodic snapshot (driven
by the fabric clock inside a running ``serve_trace`` loop) the dashboard
repaints one frame — fleet summary, serving gauges, the in-flight
request table, and the three congestion heatmaps.  On a TTY frames
repaint in place with ANSI cursor control; on a plain stream (CI logs,
tests) frames are appended, which doubles as a cheap flight recorder.

This module imports from :mod:`repro.serve`, so it is *not* re-exported
from ``repro.observe`` (the serve package imports the observe core; the
dashboard sits above both).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from ..manycore import Fabric
from ..serve.request import KernelRequest
from ..serve.scheduler import ServeResult, ServeScheduler
from .plane import ObservePlane

_CLEAR = '\x1b[2J\x1b[H'


class TopDashboard:
    """Renders plane snapshots as top(1)-style frames."""

    def __init__(self, plane: ObservePlane, scheduler=None,
                 stream=None, max_rows: int = 12,
                 use_ansi: Optional[bool] = None):
        self.plane = plane
        self.scheduler = scheduler
        self.stream = stream if stream is not None else sys.stdout
        self.max_rows = max_rows
        if use_ansi is None:
            use_ansi = bool(getattr(self.stream, 'isatty', lambda: False)())
        self.use_ansi = use_ansi
        self.frames = 0

    def install(self) -> 'TopDashboard':
        """Become the plane's snapshot callback."""
        self.plane.on_snapshot = self._on_snapshot
        return self

    # ------------------------------------------------------------------ frames
    def _on_snapshot(self, plane: ObservePlane, now: int) -> None:
        frame = self.render_frame(now)
        if self.use_ansi:
            self.stream.write(_CLEAR + frame + '\n')
        else:
            self.stream.write(frame + '\n\n')
        self.stream.flush()
        self.frames += 1

    def render_frame(self, now: int) -> str:
        plane = self.plane
        snap = plane.registry.snapshot()
        lines = [f'repro top — cycle {now}  (snapshot {plane.snapshots})']
        sched = self.scheduler
        if sched is not None:
            done = sum(1 for r in sched.finished if r.state == 'done')
            bad = len(sched.finished) - done
            lines.append(
                f'requests: {len(sched.running)} running, '
                f'{len(sched.queue)} queued, {done} done, {bad} failed'
                f'/other; peak {sched.peak_concurrent_jobs} concurrent')
        lat = snap.get('serve_latency_cycles')
        if isinstance(lat, dict) and lat.get('count'):
            lines.append(
                f'latency: p50 {lat["p50"]:.0f}  p99 {lat["p99"]:.0f}  '
                f'mean {lat["mean"]:.0f}  over {lat["count"]} completed')
        lines.append(
            f'fabric: {snap.get("tiles_active", 0)} tiles active, '
            f'{snap.get("inet_queue_depth_total", 0)} inet msgs, '
            f'{snap.get("noc_words_total", 0)} NoC words moved')

        rows = sorted(plane.inflight.values(),
                      key=lambda r: (r['state'], r['req_id']))
        if rows:
            lines.append(f'{"id":>4} {"kernel":10} {"state":8} '
                         f'{"tiles":>5} {"prio":>4} {"since":>9}')
            for row in rows[:self.max_rows]:
                lines.append(
                    f'{row["req_id"]:>4} {row["kernel"]:10} '
                    f'{row["state"]:8} {row["tiles"]:>5} '
                    f'{row["priority"]:>4} {row["since"]:>9}')
            if len(rows) > self.max_rows:
                lines.append(f'  ... {len(rows) - self.max_rows} more')
        lines.append('')
        lines.append(plane.render_heatmaps())
        return '\n'.join(lines)


def run_top(requests: List[KernelRequest],
            fabric: Optional[Fabric] = None,
            refresh: int = 5000,
            stream=None,
            verify: bool = True,
            metrics_out: Optional[str] = None,
            max_cycles: int = 200_000_000) -> ServeResult:
    """Serve ``requests`` with a live dashboard attached.

    Returns the :class:`~repro.serve.scheduler.ServeResult`; the
    dashboard object is reachable as ``result.dashboard`` for callers
    that want the frame count (tests, the CLI footer).
    """
    if fabric is None:
        fabric = Fabric()
    plane = ObservePlane(snapshot_interval=refresh,
                         metrics_out=metrics_out)
    plane.attach(fabric)
    scheduler = ServeScheduler(fabric, verify=verify)
    dash = TopDashboard(plane, scheduler=scheduler, stream=stream)
    dash.install()
    result = scheduler.run(requests, max_cycles)
    result.dashboard = dash
    result.plane = plane
    return result
