"""Acceptance: heterogeneous kernels co-scheduled on one fabric.

At least three different kernels, at least two groups in flight at once,
every output bit-identical to the same request run alone, and per-request
latency attribution that aggregates with RunStats.merge.
"""

import numpy as np
import pytest

from repro.kernels import registry
from repro.manycore import Fabric, RunStats
from repro.serve import (DONE, KernelRequest, ServeScheduler,
                         build_serve_report, isolated_reference,
                         render_serve_report, request_outputs,
                         store_serve_report, validate_serve_report)


def _req(i, kernel, arrival, lanes=4, groups=1, **kw):
    params = registry.make(kernel).params_for('test')
    return KernelRequest(req_id=i, kernel=kernel, params=params,
                         lanes=lanes, groups=groups, arrival=arrival, **kw)


@pytest.fixture(scope='module')
def cosched():
    """One serving run shared by the assertions below (it is not cheap)."""
    requests = [
        _req(0, 'mvt', arrival=0, groups=2),
        _req(1, 'gesummv', arrival=0, groups=1),
        _req(2, 'atax', arrival=50, groups=2),
        _req(3, 'gesummv', arrival=120, groups=1, priority=1),
    ]
    fabric = Fabric()
    scheduler = ServeScheduler(fabric)
    result = scheduler.run(requests)
    return fabric, result


class TestCoScheduling:
    def test_all_requests_complete_and_verify(self, cosched):
        _, result = cosched
        assert [r.state for r in result.requests] == [DONE] * 4
        assert {r.kernel for r in result.requests} == \
            {'mvt', 'gesummv', 'atax'}

    def test_groups_were_actually_concurrent(self, cosched):
        _, result = cosched
        assert result.peak_concurrent_jobs >= 2
        # overlap is visible in the timeline too, not just the counter
        r0, r1 = result.requests[0], result.requests[1]
        assert r0.launched_at < r1.finished_at
        assert r1.launched_at < r0.finished_at

    def test_outputs_bit_identical_to_isolated_runs(self, cosched):
        fabric, result = cosched
        for req in result.requests:
            got = request_outputs(fabric, req)
            ref = isolated_reference(req)
            assert got.keys() == ref.outputs.keys()
            for name in ref.outputs:
                assert np.array_equal(got[name], ref.outputs[name]), \
                    (f'request {req.req_id} ({req.kernel}) array {name!r} '
                     f'differs from its isolated run')

    def test_per_request_latency_attribution(self, cosched):
        _, result = cosched
        for req in result.requests:
            assert req.latency == req.queue_wait + req.service_cycles
            assert req.stats is not None
            # the per-request delta covers exactly the request's tiles and
            # its cycles field is the service latency
            assert req.stats.cycles == req.service_cycles
            assert len(req.stats.cores) == req.tiles_needed
            assert req.stats.total_instrs > 0
            assert req.instrs == req.stats.total_instrs

    def test_merge_aggregates_request_stats(self, cosched):
        _, result = cosched
        merged = RunStats.merge([r.stats for r in result.requests])
        assert result.merged_stats is not None
        assert merged.total_instrs == \
            sum(r.stats.total_instrs for r in result.requests)
        assert result.merged_stats.total_instrs == merged.total_instrs

    def test_report_is_schema_valid_and_storable(self, cosched, tmp_path):
        from repro.jobs import ResultStore
        _, result = cosched
        doc = build_serve_report(result, seed=None)
        validate_serve_report(doc)
        assert doc['summary']['completed'] == 4
        assert doc['summary']['failed'] == 0
        assert doc['trace']['key'].startswith('serve-')
        text = render_serve_report(doc)
        assert 'makespan' in text and 'gesummv' in text
        store = ResultStore(tmp_path / 'store')
        key = store_serve_report(store, doc)
        assert store.get_doc(key) == doc
        # a doc key can never rehydrate as a sweep RunResult
        assert store.get(key) is None
