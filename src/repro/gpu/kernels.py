"""SIMT kernels for every benchmark (the paper's HIP ports, Section 6.1).

Kernels follow the standard GPU mapping: one thread per output element,
with a compile-time grid-stride when the problem exceeds the machine's
resident thread count.  Because the machine model requires wavefront-
uniform control flow, per-lane conditions (grid bounds, stencil borders,
bfs visitation) are handled with predication around the stores and clamped
gather addresses — the same discipline the SDV kernels use.

Each benchmark produces a list of kernel launches ``(program, entry)``;
sequentially-dependent algorithms (gramschm's k loop, bfs levels, fdtd
timesteps) become sequences of launches and pay the per-launch overhead,
which is exactly why they do poorly on the GPU.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..isa import Assembler, Program, opcodes as op
from ..kernels import registry
from ..kernels.base import Workspace
from ..kernels.vector_templates import MatTerm, StencilSection
from .config import GpuConfig

Launch = Tuple[Program, int]


def each_item(a: Assembler, total: int, nthreads: int,
              body: Callable[[Assembler], None]) -> None:
    """Emit ``body`` once per grid-stride trip (x3 = item, x7 = in-range).

    Wavefronts with no in-range lanes skip the body through a warp vote +
    uniform branch — the standard ``if (i < n)`` early exit, which is what
    lets surplus wavefronts on over-provisioned launches retire instantly.
    """
    trips = math.ceil(total / nthreads)
    for t in range(trips):
        a.li('x4', t * nthreads)
        a.add('x3', 'x1', 'x4')
        a.li('x31', total)
        a.slt('x7', 'x3', 'x31')
        skip = a.label()
        a.vote_any('x6', 'x7')
        a.beq('x6', 'x0', skip.name)
        body(a)
        a.bind(skip)


def pred_store(a: Assembler, value: str, addr: str, imm: int = 0,
               flag: str = 'x7') -> None:
    a.pred_neq(flag, 'x0')
    a.sw(value, addr, imm)
    a.pred_eq('x0', 'x0')


def _kernel(build: Callable[[Assembler], None]) -> Launch:
    a = Assembler()
    a.csrr('x1', op.CSR_TID)
    a.csrr('x2', op.CSR_NCORES)
    build(a)
    a.halt()
    return a.finish(), 0


def fconst(a: Assembler, reg: str, v: float) -> None:
    a.li(reg, float(v))


# --------------------------------------------------------------- matmul-like
def k_matmul(cfg: GpuConfig, *, ni: int, nj: int, nk: int,
             terms: Sequence[MatTerm], out_base: int, out_stride: int,
             alpha: float = 1.0, beta: float = 0.0) -> Launch:
    """Thread per output element; k-loop inner (classic GPU gemm mapping)."""

    def build(a: Assembler):
        if alpha != 1.0:
            fconst(a, 'f10', alpha)
        if beta and beta != 1.0:
            fconst(a, 'f11', beta)

        def body(a: Assembler):
            a.li('x31', nj)
            a.div('x5', 'x3', 'x31')    # i
            a.rem('x6', 'x3', 'x31')    # j
            fconst(a, 'f8', 0.0)
            # per-term base addresses
            for t, term in enumerate(terms):
                a.li('x31', term.bcast_stride)
                a.mul(f'x{8 + t}', 'x5', 'x31')
                a.li('x31', term.bcast_base)
                a.add(f'x{8 + t}', f'x{8 + t}', 'x31')
                a.li('x31', term.group_base)
                a.add(f'x{10 + t}', 'x6', 'x31')
            with a.for_range('x12', 0, nk):
                for t, term in enumerate(terms):
                    a.lw('f1', f'x{8 + t}', 0)
                    a.lw('f2', f'x{10 + t}', 0)
                    a.fma('f8', 'f1', 'f2')
                    a.addi(f'x{8 + t}', f'x{8 + t}', 1)
                    a.li('x31', term.group_stride)
                    a.add(f'x{10 + t}', f'x{10 + t}', 'x31')
            a.li('x31', out_stride)
            a.mul('x13', 'x5', 'x31')
            a.add('x13', 'x13', 'x6')
            a.li('x31', out_base)
            a.add('x13', 'x13', 'x31')
            if alpha != 1.0:
                a.fmul('f8', 'f8', 'f10')
            if beta:
                a.lw('f2', 'x13', 0)
                if beta != 1.0:
                    a.fmul('f2', 'f2', 'f11')
                a.fadd('f8', 'f8', 'f2')
            pred_store(a, 'f8', 'x13')

        each_item(a, ni * nj, cfg.total_threads, body)

    return _kernel(build)


def k_transpose(cfg: GpuConfig, *, src: int, dst: int, n: int,
                m: int) -> Launch:
    def build(a: Assembler):
        def body(a: Assembler):
            a.li('x31', m)
            a.div('x5', 'x3', 'x31')    # i
            a.rem('x6', 'x3', 'x31')    # j
            a.li('x31', m)
            a.mul('x8', 'x5', 'x31')
            a.add('x8', 'x8', 'x6')
            a.li('x31', src)
            a.add('x8', 'x8', 'x31')
            a.lw('f1', 'x8', 0)
            a.li('x31', n)
            a.mul('x9', 'x6', 'x31')
            a.add('x9', 'x9', 'x5')
            a.li('x31', dst)
            a.add('x9', 'x9', 'x31')
            pred_store(a, 'f1', 'x9')

        each_item(a, n * m, cfg.total_threads, body)

    return _kernel(build)


# ------------------------------------------------------------------- rowdot
def k_rowdot(cfg: GpuConfig, *, nrows: int, ncols: int,
             mats: Sequence[Tuple[int, int]], vec_base: int, out_base: int,
             coeffs: Sequence[float], accumulate: bool = False) -> Launch:
    """Thread per output row (the PolyBench/GPU matvec mapping; row-major
    matrix accesses are uncoalesced across threads, as on the real GPU)."""

    def build(a: Assembler):
        for t, c in enumerate(coeffs):
            if c != 1.0:
                fconst(a, f'f{10 + t}', c)

        def body(a: Assembler):
            for t, (base, stride) in enumerate(mats):
                a.li('x31', stride)
                a.mul(f'x{8 + t}', 'x3', 'x31')
                a.li('x31', base)
                a.add(f'x{8 + t}', f'x{8 + t}', 'x31')
                fconst(a, f'f{20 + t}', 0.0)  # accumulator
            a.li('x10', vec_base)
            with a.for_range('x12', 0, ncols):
                a.lw('f1', 'x10', 0)
                for t in range(len(mats)):
                    a.lw('f2', f'x{8 + t}', 0)
                    a.fma(f'f{20 + t}', 'f1', 'f2')
                    a.addi(f'x{8 + t}', f'x{8 + t}', 1)
                a.addi('x10', 'x10', 1)
            fconst(a, 'f8', 0.0)
            for t, c in enumerate(coeffs):
                if c != 1.0:
                    a.fmul(f'f{20 + t}', f'f{20 + t}', f'f{10 + t}')
                a.fadd('f8', 'f8', f'f{20 + t}')
            a.li('x13', out_base)
            a.add('x13', 'x13', 'x3')
            if accumulate:
                a.lw('f2', 'x13', 0)
                a.fadd('f8', 'f8', 'f2')
            pred_store(a, 'f8', 'x13')

        each_item(a, nrows, cfg.total_threads, body)

    return _kernel(build)


# ------------------------------------------------------------------- stencil
def k_stencil(cfg: GpuConfig, *, n_out_rows: int, row0: int, ncols: int,
              sections: Sequence[StencilSection], coeffs: Sequence[float],
              out_base: int, out_stride: int, jlo: int, jhi: int,
              out_coeff_old=None, row_valid=None) -> Launch:
    def build(a: Assembler):
        def body(a: Assembler):
            a.li('x31', ncols)
            a.div('x5', 'x3', 'x31')    # row offset
            a.rem('x6', 'x3', 'x31')    # j
            # refine the store flag with column and row bounds
            a.slti('x8', 'x6', jlo)
            a.li('x31', jhi - 1)
            a.slt('x9', 'x31', 'x6')
            a.or_('x8', 'x8', 'x9')
            if row_valid is not None:
                mod, rlo, rhi = row_valid
                a.addi('x10', 'x5', row0)
                a.li('x31', mod)
                a.rem('x10', 'x10', 'x31')
                a.slti('x11', 'x10', rlo)
                a.or_('x8', 'x8', 'x11')
                a.li('x31', rhi - 1)
                a.slt('x11', 'x31', 'x10')
                a.or_('x8', 'x8', 'x11')
            a.slti('x8', 'x8', 1)       # invert: 1 = interior
            a.and_('x7', 'x7', 'x8')
            fconst(a, 'f8', 0.0)
            for sec, c in zip(sections, coeffs):
                a.li('x31', sec.stride)
                a.mul('x12', 'x5', 'x31')
                a.add('x12', 'x12', 'x6')
                a.li('x31', sec.base + (row0 + sec.di) * sec.stride +
                     sec.dj)
                a.add('x12', 'x12', 'x31')
                a.lw('f1', 'x12', 0)
                fconst(a, 'f6', c)
                a.fma('f8', 'f1', 'f6')
            a.li('x31', out_stride)
            a.mul('x13', 'x5', 'x31')
            a.add('x13', 'x13', 'x6')
            a.li('x31', out_base + row0 * out_stride)
            a.add('x13', 'x13', 'x31')
            if out_coeff_old is not None:
                a.lw('f2', 'x13', 0)
                if out_coeff_old != 1.0:
                    fconst(a, 'f6', out_coeff_old)
                    a.fmul('f2', 'f2', 'f6')
                a.fadd('f8', 'f8', 'f2')
            pred_store(a, 'f8', 'x13')

        each_item(a, n_out_rows * ncols, cfg.total_threads, body)

    return _kernel(build)


# -------------------------------------------------------- benchmark adapters
def build_launches(bench_name: str, ws: Workspace, params: dict,
                   cfg: GpuConfig) -> List[Launch]:
    """GPU kernel-launch sequence for one benchmark."""
    fn = _BUILDERS.get(bench_name)
    if fn is None:
        raise KeyError(f'no GPU port for benchmark {bench_name!r}')
    return fn(ws, params, cfg)


def _gemm(ws, p, cfg):
    from ..kernels.gemm import ALPHA, BETA
    ni, nj, nk = p['ni'], p['nj'], p['nk']
    return [k_matmul(cfg, ni=ni, nj=nj, nk=nk,
                     terms=[MatTerm(ws.base('A'), nk, ws.base('B'), nj)],
                     out_base=ws.base('C'), out_stride=nj,
                     alpha=ALPHA, beta=BETA)]


def _mm2(ws, p, cfg):
    ni, nj, nk, nl = p['ni'], p['nj'], p['nk'], p['nl']
    return [
        k_matmul(cfg, ni=ni, nj=nj, nk=nk,
                 terms=[MatTerm(ws.base('A'), nk, ws.base('B'), nj)],
                 out_base=ws.base('tmp'), out_stride=nj),
        k_matmul(cfg, ni=ni, nj=nl, nk=nj,
                 terms=[MatTerm(ws.base('tmp'), nj, ws.base('C'), nl)],
                 out_base=ws.base('E'), out_stride=nl),
    ]


def _mm3(ws, p, cfg):
    n = p['n']
    pairs = [('A', 'B', 'E'), ('C', 'D', 'F'), ('E', 'F', 'G')]
    return [k_matmul(cfg, ni=n, nj=n, nk=n,
                     terms=[MatTerm(ws.base(x), n, ws.base(y), n)],
                     out_base=ws.base(o), out_stride=n)
            for x, y, o in pairs]


def _syrk(ws, p, cfg):
    from ..kernels.syrk import ALPHA, BETA
    n, m = p['n'], p['m']
    return [
        k_transpose(cfg, src=ws.base('A'), dst=ws.base('AT'), n=n, m=m),
        k_matmul(cfg, ni=n, nj=n, nk=m,
                 terms=[MatTerm(ws.base('A'), m, ws.base('AT'), n)],
                 out_base=ws.base('C'), out_stride=n,
                 alpha=ALPHA, beta=BETA),
    ]


def _syr2k(ws, p, cfg):
    from ..kernels.syr2k import ALPHA, BETA
    n, m = p['n'], p['m']
    return [
        k_transpose(cfg, src=ws.base('A'), dst=ws.base('AT'), n=n, m=m),
        k_transpose(cfg, src=ws.base('B'), dst=ws.base('BT'), n=n, m=m),
        k_matmul(cfg, ni=n, nj=n, nk=m,
                 terms=[MatTerm(ws.base('A'), m, ws.base('BT'), n),
                        MatTerm(ws.base('B'), m, ws.base('AT'), n)],
                 out_base=ws.base('C'), out_stride=n,
                 alpha=ALPHA, beta=BETA),
    ]


def _atax(ws, p, cfg):
    n = p['n']
    return [
        k_rowdot(cfg, nrows=n, ncols=n, mats=[(ws.base('A'), n)],
                 vec_base=ws.base('x'), out_base=ws.base('tmp'),
                 coeffs=[1.0]),
        k_matmul(cfg, ni=1, nj=n, nk=n,
                 terms=[MatTerm(ws.base('tmp'), 0, ws.base('A'), n)],
                 out_base=ws.base('y'), out_stride=n),
    ]


def _bicg(ws, p, cfg):
    n = p['n']
    return [
        k_matmul(cfg, ni=1, nj=n, nk=n,
                 terms=[MatTerm(ws.base('r'), 0, ws.base('A'), n)],
                 out_base=ws.base('s'), out_stride=n),
        k_rowdot(cfg, nrows=n, ncols=n, mats=[(ws.base('A'), n)],
                 vec_base=ws.base('p'), out_base=ws.base('q'),
                 coeffs=[1.0]),
    ]


def _mvt(ws, p, cfg):
    n = p['n']
    return [
        k_rowdot(cfg, nrows=n, ncols=n, mats=[(ws.base('A'), n)],
                 vec_base=ws.base('y1'), out_base=ws.base('x1'),
                 coeffs=[1.0], accumulate=True),
        k_matmul(cfg, ni=1, nj=n, nk=n,
                 terms=[MatTerm(ws.base('y2'), 0, ws.base('A'), n)],
                 out_base=ws.base('x2'), out_stride=n, beta=1.0),
    ]


def _gesummv(ws, p, cfg):
    from ..kernels.gesummv import ALPHA, BETA
    n = p['n']
    return [k_rowdot(cfg, nrows=n, ncols=n,
                     mats=[(ws.base('A'), n), (ws.base('B'), n)],
                     vec_base=ws.base('x'), out_base=ws.base('y'),
                     coeffs=[ALPHA, BETA])]


def _conv2d(ws, p, cfg):
    from ..kernels.conv2d import conv2d_sections
    n, m = p['n'], p['m']
    sections, coeffs = conv2d_sections(ws.base('A'), m)
    return [k_stencil(cfg, n_out_rows=n - 2, row0=1, ncols=m,
                      sections=sections, coeffs=coeffs,
                      out_base=ws.base('B'), out_stride=m,
                      jlo=1, jhi=m - 1)]


def _conv3d(ws, p, cfg):
    from ..kernels.conv3d import conv3d_sections
    pl, n, m = p['p'], p['n'], p['m']
    sections, coeffs = conv3d_sections(ws.base('A'), n, m)
    row0 = n + 1
    n_out = (pl - 1) * n - 2 - row0 + 1
    return [k_stencil(cfg, n_out_rows=n_out, row0=row0, ncols=m,
                      sections=sections, coeffs=coeffs,
                      out_base=ws.base('B'), out_stride=m,
                      jlo=1, jhi=m - 1, row_valid=(n, 1, n - 1))]


def _fdtd2d(ws, p, cfg):
    from ..kernels.fdtd2d import Fdtd2d
    bench = Fdtd2d()
    n, m, tmax = p['n'], p['m'], p['tmax']
    launches = []
    for t in range(tmax):
        fict, ey = ws.base('fict'), ws.base('ey')

        def fict_kernel(a: Assembler, t=t):
            def body(a: Assembler):
                a.li('x5', fict + t)
                a.lw('f1', 'x5', 0)
                a.li('x31', ey)
                a.add('x6', 'x3', 'x31')
                pred_store(a, 'f1', 'x6')

            each_item(a, m, cfg.total_threads, body)

        launches.append(_kernel(fict_kernel))
        for st in bench._stencils(ws, p):
            st = dict(st)
            st.pop('name')
            launches.append(k_stencil(cfg, **st))
    return launches


def _corr_family(ws, p, cfg, scale: bool):
    m, n = p['m'], p['n']
    data, dt, out = ws.base('data'), ws.base('DT'), ws.base('out')
    launches = [_k_column_stats(cfg, data=data, m=m, n=n, scale=scale),
                k_transpose(cfg, src=data, dst=dt, n=m, m=n),
                k_matmul(cfg, ni=n, nj=n, nk=m,
                         terms=[MatTerm(dt, m, data, n)],
                         out_base=out, out_stride=n)]
    if scale:
        launches.append(_k_fix_diag(cfg, out=out, n=n))
    return launches


def _k_column_stats(cfg, *, data: int, m: int, n: int,
                    scale: bool) -> Launch:
    def build(a: Assembler):
        fconst(a, 'f12', float(m))
        if scale:
            fconst(a, 'f13', 0.1)
            fconst(a, 'f14', 1.0)
            fconst(a, 'f15', float(np.sqrt(float(m))))

        def body(a: Assembler):
            a.li('x31', data)
            a.add('x5', 'x3', 'x31')
            fconst(a, 'f8', 0.0)
            fconst(a, 'f9', 0.0)
            a.mv('x6', 'x5')
            with a.for_range('x12', 0, m):
                a.lw('f1', 'x6', 0)
                a.fadd('f8', 'f8', 'f1')
                if scale:
                    a.fma('f9', 'f1', 'f1')
                a.addi('x6', 'x6', n)
            a.fdiv('f10', 'f8', 'f12')
            if scale:
                a.fdiv('f9', 'f9', 'f12')
                a.fmul('f2', 'f10', 'f10')
                a.fsub('f9', 'f9', 'f2')
                a.fsqrt('f11', 'f9')
                # branchless epsilon guard (per-lane condition)
                a.fle('f3', 'f11', 'f13')       # 1.0 if std <= 0.1
                a.fsub('f4', 'f14', 'f3')       # 1 - cond
                a.fmul('f11', 'f11', 'f4')
                a.fadd('f11', 'f11', 'f3')      # std or 1.0
                a.fmul('f11', 'f11', 'f15')
            a.mv('x6', 'x5')
            with a.for_range('x12', 0, m):
                a.lw('f1', 'x6', 0)
                a.fsub('f1', 'f1', 'f10')
                if scale:
                    a.fdiv('f1', 'f1', 'f11')
                pred_store(a, 'f1', 'x6')
                a.addi('x6', 'x6', n)

        each_item(a, n, cfg.total_threads, body)

    return _kernel(build)


def _k_fix_diag(cfg, *, out: int, n: int) -> Launch:
    def build(a: Assembler):
        fconst(a, 'f14', 1.0)

        def body(a: Assembler):
            a.li('x31', n + 1)
            a.mul('x5', 'x3', 'x31')
            a.li('x31', out)
            a.add('x5', 'x5', 'x31')
            pred_store(a, 'f14', 'x5')

        each_item(a, n, cfg.total_threads, body)

    return _kernel(build)


def _gramschm(ws, p, cfg):
    m, n = p['m'], p['n']
    A, Q, R = ws.base('A'), ws.base('Q'), ws.base('R')
    launches = []
    for k in range(n):
        launches.append(_k_gs_norm(cfg, A=A, R=R, m=m, n=n, k=k))
        launches.append(_k_gs_normalize(cfg, A=A, Q=Q, R=R, m=m, n=n, k=k))
        launches.append(_k_gs_update(cfg, A=A, Q=Q, R=R, m=m, n=n, k=k))
    return launches


def _k_gs_norm(cfg, *, A, R, m, n, k) -> Launch:
    """Thread 0 computes ||A[:,k]|| and writes R[k][k]."""

    def build(a: Assembler):
        def body(a: Assembler):
            a.slti('x8', 'x3', 1)
            a.and_('x7', 'x7', 'x8')
            fconst(a, 'f8', 0.0)
            a.li('x5', A + k)
            with a.for_range('x12', 0, m):
                a.lw('f1', 'x5', 0)
                a.fma('f8', 'f1', 'f1')
                a.addi('x5', 'x5', n)
            a.fsqrt('f9', 'f8')
            a.li('x6', R + k * n + k)
            pred_store(a, 'f9', 'x6')

        each_item(a, 1, cfg.total_threads, body)

    return _kernel(build)


def _k_gs_normalize(cfg, *, A, Q, R, m, n, k) -> Launch:
    """Thread per row: Q[i][k] = A[i][k] / R[k][k]."""

    def build(a: Assembler):
        def body(a: Assembler):
            a.li('x6', R + k * n + k)
            a.lw('f9', 'x6', 0)
            a.li('x31', n)
            a.mul('x5', 'x3', 'x31')
            a.li('x31', A + k)
            a.add('x5', 'x5', 'x31')
            a.lw('f1', 'x5', 0)
            a.fdiv('f1', 'f1', 'f9')
            a.li('x31', Q - A)
            a.add('x6', 'x5', 'x31')
            pred_store(a, 'f1', 'x6')

        each_item(a, m, cfg.total_threads, body)

    return _kernel(build)


def _k_gs_update(cfg, *, A, Q, R, m, n, k) -> Launch:
    """Thread per trailing column j in (k, n)."""

    def build(a: Assembler):
        def body(a: Assembler):
            a.addi('x5', 'x3', k + 1)   # j
            a.li('x31', n)
            a.slt('x8', 'x5', 'x31')
            a.and_('x7', 'x7', 'x8')
            a.li('x31', n - 1)
            # clamp j for loads
            a.slt('x9', 'x31', 'x5')
            a.li('x10', n - 1)
            a.mul('x9', 'x9', 'x10')
            a.slti('x10', 'x9', 1)
            a.mul('x5', 'x5', 'x10')
            a.add('x5', 'x5', 'x9')
            fconst(a, 'f8', 0.0)
            a.li('x11', Q + k)
            a.li('x12', A)
            a.add('x12', 'x12', 'x5')
            with a.for_range('x13', 0, m):
                a.lw('f1', 'x11', 0)
                a.lw('f2', 'x12', 0)
                a.fma('f8', 'f1', 'f2')
                a.addi('x11', 'x11', n)
                a.addi('x12', 'x12', n)
            a.li('x31', R + k * n)
            a.add('x14', 'x31', 'x5')
            pred_store(a, 'f8', 'x14')
            a.li('x11', Q + k)
            a.li('x12', A)
            a.add('x12', 'x12', 'x5')
            with a.for_range('x13', 0, m):
                a.lw('f1', 'x11', 0)
                a.lw('f2', 'x12', 0)
                a.fmul('f1', 'f1', 'f8')
                a.fsub('f2', 'f2', 'f1')
                pred_store(a, 'f2', 'x12')
                a.addi('x11', 'x11', n)
                a.addi('x12', 'x12', n)

        each_item(a, n, cfg.total_threads, body)

    return _kernel(build)


def _bfs(ws, p, cfg):
    v = p['v']
    rp, col, depth = ws.bases['rp'], ws.bases['col'], ws.bases['depth']
    maxdeg = ws.meta['maxdeg']
    launches = []
    for level in range(ws.meta['levels']):
        launches.append(_k_bfs_level(cfg, v=v, rp=rp, col=col, depth=depth,
                                     maxdeg=maxdeg, level=level))
    return launches


def _k_bfs_level(cfg, *, v, rp, col, depth, maxdeg, level) -> Launch:
    def build(a: Assembler):
        def body(a: Assembler):
            a.li('x5', depth)
            a.add('x5', 'x5', 'x3')
            a.lw('x6', 'x5', 0)
            a.li('x31', level)
            # active = in-range && depth[v] == level
            a.slt('x8', 'x6', 'x31')
            a.slt('x9', 'x31', 'x6')
            a.or_('x8', 'x8', 'x9')
            a.slti('x8', 'x8', 1)
            a.and_('x7', 'x7', 'x8')
            a.li('x10', rp)
            a.add('x10', 'x10', 'x3')
            a.lw('x11', 'x10', 0)
            a.lw('x12', 'x10', 1)
            for e in range(maxdeg):
                a.addi('x13', 'x11', e)
                a.slt('x14', 'x13', 'x12')
                a.and_('x14', 'x14', 'x7')
                a.mul('x13', 'x13', 'x14')
                a.li('x31', col)
                a.add('x15', 'x31', 'x13')
                a.lw('x16', 'x15', 0)
                a.li('x31', depth)
                a.add('x17', 'x31', 'x16')
                a.lw('x26', 'x17', 0)      # depth[w]
                a.slt('x27', 'x26', 'x0')  # unvisited
                a.and_('x14', 'x14', 'x27')
                a.li('x26', level + 1)
                pred_store(a, 'x26', 'x17', flag='x14')

        each_item(a, v, cfg.total_threads, body)

    return _kernel(build)


_BUILDERS = {
    'gemm': _gemm,
    '2mm': _mm2,
    '3mm': _mm3,
    'syrk': _syrk,
    'syr2k': _syr2k,
    'atax': _atax,
    'bicg': _bicg,
    'mvt': _mvt,
    'gesummv': _gesummv,
    '2dconv': _conv2d,
    '3dconv': _conv3d,
    'fdtd-2d': _fdtd2d,
    'corr': lambda ws, p, cfg: _corr_family(ws, p, cfg, True),
    'covar': lambda ws, p, cfg: _corr_family(ws, p, cfg, False),
    'gramschm': _gramschm,
    'bfs': _bfs,
}
