"""Integration tests: vector groups, instruction forwarding, DAE frames."""

import pytest

from repro.core import GroupDescriptor
from repro.isa import (Assembler, VL_GROUP, VL_SELF, VL_SINGLE,
                       opcodes as op)
from repro.manycore import Fabric, small_config
from tests.conftest import pack_frame_cfg


def vector_program(build_scalar, build_microthreads, group_tiles,
                   frame_size=4, num_slots=8, handle=0):
    """Assemble the canonical SPMD vector-kernel skeleton.

    Core layout: ``group_tiles[0]`` is the scalar core, the rest are lanes.
    Cores not in the group halt immediately.  ``build_scalar(a)`` emits the
    scalar stream between ``vconfig`` and ``devec``; ``build_microthreads(a)``
    emits labeled microthread bodies at the end of the program.
    """
    a = Assembler()
    a.csrr('x1', op.CSR_COREID)
    for t in group_tiles:
        a.li('x2', t)
        a.beq('x1', 'x2', f'member_{t}')
    a.halt()
    for i, t in enumerate(group_tiles):
        a.bind(f'member_{t}')
        a.li('x3', pack_frame_cfg(frame_size, num_slots))
        a.csrw(op.CSR_FRAME_CFG, 'x3')
        a.li('x4', handle)
        if i == 0:
            a.j('scalar_entry')
        else:
            a.vconfig('x4')
            a.halt()  # lanes never fall through; devec redirects them
    a.bind('scalar_entry')
    a.vconfig('x4')
    build_scalar(a)
    a.devec('resume')
    a.bind('resume')
    a.barrier()
    a.halt()
    build_microthreads(a)
    return a.finish()


def make_group_fabric(lanes=3, frame_size=4, num_slots=8):
    fabric = Fabric(small_config())
    tiles = list(range(lanes + 1))
    desc = GroupDescriptor(0, tiles, frame_size=frame_size,
                           num_frame_slots=num_slots)
    handle = fabric.register_group(desc)
    return fabric, tiles, handle


class TestGroupFormation:
    def test_vissue_microthread_runs_on_all_lanes(self):
        fabric, tiles, handle = make_group_fabric(lanes=3)
        out = fabric.alloc(16)

        def scalar(a):
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.csrr('x5', op.CSR_TID)
            a.li('x6', 100)
            a.add('x6', 'x6', 'x5')
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('x6', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[out:out + 3] == [100, 101, 102]

    def test_lane_state_persists_across_microthreads(self):
        """The paper's vec_i += VLEN pattern: registers live across vissues."""
        fabric, tiles, handle = make_group_fabric(lanes=2)
        out = fabric.alloc(16)

        def scalar(a):
            a.vissue('init')
            for _ in range(5):
                a.vissue('body')
            a.vissue('fini')

        def mts(a):
            a.bind('init')
            a.li('x10', 0)
            a.vend()
            a.bind('body')
            a.addi('x10', 'x10', 7)
            a.vend()
            a.bind('fini')
            a.csrr('x5', op.CSR_TID)
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('x10', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[out:out + 2] == [35, 35]

    def test_icache_disabled_on_vector_cores(self):
        """Only scalar + expander fetch; trailing lanes use the inet."""
        fabric, tiles, handle = make_group_fabric(lanes=3)
        out = fabric.alloc(16)

        def scalar(a):
            for _ in range(10):
                a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.addi('x10', 'x10', 1)
            a.addi('x11', 'x11', 2)
            a.addi('x12', 'x12', 3)
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        stats = fabric.run()
        scalar_i = fabric.tiles[tiles[0]].stats.icache_accesses
        expander_i = fabric.tiles[tiles[1]].stats.icache_accesses
        lane2_i = fabric.tiles[tiles[2]].stats.icache_accesses
        lane3_i = fabric.tiles[tiles[3]].stats.icache_accesses
        assert expander_i > 30  # fetched 10 microthreads of 4 instrs
        # trailing lanes only fetched the short setup/teardown code
        assert lane2_i < expander_i / 2
        assert lane3_i < expander_i / 2
        # trailing lanes executed exactly the 30 forwarded microthread
        # instructions (3 per body x 10 bodies) without fetching them
        for t in tiles[2:]:
            ts = fabric.tiles[t].stats
            assert ts.instrs - ts.icache_accesses == 30

    def test_inet_forwards_counted(self):
        fabric, tiles, handle = make_group_fabric(lanes=3)

        def scalar(a):
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.addi('x10', 'x10', 1)
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        # expander forwards the addi to lane 1, lane 1 forwards to lane 2,
        # the tail lane forwards nothing
        assert fabric.tiles[tiles[1]].stats.inet_forwards >= 1
        assert fabric.tiles[tiles[2]].stats.inet_forwards >= 1
        assert fabric.tiles[tiles[3]].stats.inet_forwards == 0

    def test_devec_returns_lanes_to_mimd(self):
        fabric, tiles, handle = make_group_fabric(lanes=2)
        out = fabric.alloc(16)

        def scalar(a):
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.nop()
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        for t in tiles:
            tile = fabric.tiles[t]
            assert tile.halted
            assert tile.group is None

    def test_expander_branch_in_microthread(self):
        """Consistent branches (loops) are allowed inside microthreads."""
        fabric, tiles, handle = make_group_fabric(lanes=2)
        out = fabric.alloc(16)

        def scalar(a):
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.li('x10', 0)
            with a.for_range('x11', 0, 8):
                a.addi('x10', 'x10', 3)
            a.csrr('x5', op.CSR_TID)
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('x10', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[out:out + 2] == [24, 24]


class TestPredication:
    def test_pred_eq_masks_lanes(self):
        fabric, tiles, handle = make_group_fabric(lanes=3)
        out = fabric.alloc(16)

        def scalar(a):
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.csrr('x5', op.CSR_TID)
            a.li('x6', 1)
            a.li('x10', 0)
            a.pred_eq('x5', 'x6')    # only lane 1 executes
            a.li('x10', 42)
            a.pred_eq('x0', 'x0')    # re-enable all lanes
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('x10', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[out:out + 3] == [0, 42, 0]

    def test_pred_neq(self):
        fabric, tiles, handle = make_group_fabric(lanes=2)
        out = fabric.alloc(16)

        def scalar(a):
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.csrr('x5', op.CSR_TID)
            a.li('x10', 5)
            a.pred_neq('x5', 'x0')   # lanes with tid != 0
            a.li('x10', 9)
            a.pred_eq('x0', 'x0')
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('x10', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[out:out + 2] == [5, 9]


class TestDAE:
    def test_group_vload_feeds_frames(self):
        """Scalar issues one group load; each lane consumes its chunk."""
        fabric, tiles, handle = make_group_fabric(lanes=3, frame_size=4)
        data = [float(i + 1) for i in range(12)]  # 3 lanes x 4 words
        src = fabric.alloc(data)
        out = fabric.alloc(16)

        def scalar(a):
            a.li('x10', src)
            a.li('x11', 0)  # frame slot 0 offset
            a.vload('x11', 'x10', 0, 4, VL_GROUP)
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.frame_start('x8')
            a.lwsp('f1', 'x8', 0)
            a.lwsp('f2', 'x8', 1)
            a.lwsp('f3', 'x8', 2)
            a.lwsp('f4', 'x8', 3)
            a.fadd('f5', 'f1', 'f2')
            a.fadd('f5', 'f5', 'f3')
            a.fadd('f5', 'f5', 'f4')
            a.remem()
            a.csrr('x5', op.CSR_TID)
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('f5', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles, frame_size=4)
        fabric.load_program(prog)
        fabric.run()
        expect = [sum(data[i * 4:(i + 1) * 4]) for i in range(3)]
        assert fabric.memory[out:out + 3] == pytest.approx(expect)

    def test_single_vload_targets_one_lane(self):
        fabric, tiles, handle = make_group_fabric(lanes=2, frame_size=2)
        src = fabric.alloc([5.0, 6.0, 7.0, 8.0])
        out = fabric.alloc(16)

        def scalar(a):
            a.li('x10', src)
            a.li('x11', 0)
            a.vload('x11', 'x10', 0, 2, VL_SINGLE)   # lane 0 gets 5,6
            a.addi('x10', 'x10', 2)
            a.vload('x11', 'x10', 1, 2, VL_SINGLE)   # lane 1 gets 7,8
            a.vissue('mt')

        def mts(a):
            a.bind('mt')
            a.frame_start('x8')
            a.lwsp('f1', 'x8', 0)
            a.lwsp('f2', 'x8', 1)
            a.fadd('f3', 'f1', 'f2')
            a.remem()
            a.csrr('x5', op.CSR_TID)
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('f3', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles, frame_size=2)
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[out:out + 2] == pytest.approx([11.0, 15.0])

    def test_frame_pipelining_multiple_iterations(self):
        """Scalar runs ahead filling future frames while lanes consume."""
        lanes = 2
        iters = 6
        fabric, tiles, handle = make_group_fabric(lanes=lanes, frame_size=2)
        data = [float(i) for i in range(lanes * 2 * iters)]
        src = fabric.alloc(data)
        out = fabric.alloc(16)

        def scalar(a):
            a.li('x10', src)
            a.li('x11', 0)           # rotating frame-slot offset
            a.li('x12', 2)           # frame size
            a.li('x13', 8 * 2)       # region size = slots * frame size
            a.vissue('init')
            for _ in range(iters):
                a.vload('x11', 'x10', 0, 2, VL_GROUP)
                a.vissue('body')
                a.addi('x10', 'x10', 2 * lanes)
                a.add('x11', 'x11', 'x12')
                a.blt('x11', 'x13', f'.nowrap{_}')
                a.li('x11', 0)
                a.bind(f'.nowrap{_}')
            a.vissue('fini')

        def mts(a):
            a.bind('init')
            a.li('f10', 0)
            a.fcvt_sw('f10', 'f10')
            a.vend()
            a.bind('body')
            a.frame_start('x8')
            a.lwsp('f1', 'x8', 0)
            a.lwsp('f2', 'x8', 1)
            a.fadd('f10', 'f10', 'f1')
            a.fadd('f10', 'f10', 'f2')
            a.remem()
            a.vend()
            a.bind('fini')
            a.csrr('x5', op.CSR_TID)
            a.li('x7', out)
            a.add('x7', 'x7', 'x5')
            a.sw('f10', 'x7', 0)
            a.vend()

        prog = vector_program(scalar, mts, tiles, frame_size=2)
        fabric.load_program(prog)
        fabric.run()
        expect = []
        for lane in range(lanes):
            tot = 0.0
            for it in range(iters):
                base = it * lanes * 2 + lane * 2
                tot += data[base] + data[base + 1]
            expect.append(tot)
        assert fabric.memory[out:out + lanes] == pytest.approx(expect)
        # frames actually cycled
        assert fabric.tiles[tiles[1]].stats.frames_consumed == iters

    def test_self_vload_on_independent_core(self):
        """NV_PF pattern: an independent core prefetches a full line into
        its own frame queue."""
        fabric = Fabric(small_config())
        data = [float(i) for i in range(16)]
        src = fabric.alloc(data)
        out = fabric.alloc(16)
        a = Assembler()
        a.csrr('x1', op.CSR_COREID)
        a.beq('x1', 'x0', 'main')
        a.halt()
        a.bind('main')
        a.li('x3', pack_frame_cfg(16, 5))
        a.csrw(op.CSR_FRAME_CFG, 'x3')
        a.li('x10', src)
        a.li('x11', 0)
        a.vload('x11', 'x10', 0, 16, VL_SELF)
        a.frame_start('x8')
        a.li('f5', 0)
        a.fcvt_sw('f5', 'f5')
        for i in range(16):
            a.lwsp('f1', 'x8', i)
            a.fadd('f5', 'f5', 'f1')
        a.remem()
        a.li('x7', out)
        a.sw('f5', 'x7', 0)
        a.halt()
        prog = a.finish()
        fabric.load_program(prog)
        fabric.run()
        assert fabric.memory[out] == pytest.approx(sum(data))


class TestInetBackpressure:
    def test_bounded_queue_limits_runahead(self):
        """The expander can be at most ~q_inet launches ahead of the tail."""
        fabric, tiles, handle = make_group_fabric(lanes=3)

        def scalar(a):
            for _ in range(20):
                a.vissue('mt')

        def mts(a):
            a.bind('mt')
            # long microthread so lanes lag and backpressure builds
            for _ in range(6):
                a.mul('x10', 'x10', 'x10')
            a.vend()

        prog = vector_program(scalar, mts, tiles)
        fabric.load_program(prog)
        fabric.run()
        total_bp = sum(fabric.tiles[t].stats.stall_backpressure
                       for t in tiles)
        assert total_bp > 0
