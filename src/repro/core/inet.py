"""The instruction forwarding network (inet), paper Section 3.2.

The inet is a static network of direct 1-cycle links between mesh-adjacent
tiles.  Within a vector group the links form a single path:

    scalar -> expander -> vector_1 -> vector_2 -> ... -> vector_{N-1}

Each receiving core has a small input queue (2 entries in the paper).  A
sender stalls when the receiver's queue is full — this bounded queueing is
what makes the paper's compiler-driven implicit synchronization sound.

Messages are tagged tuples:

* ``('inst', Instr)``   — a forwarded vector instruction
* ``('launch', pc)``    — a ``vissue`` microthread launch
* ``('devec', pc)``     — disband; resume MIMD execution at ``pc``
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple

MSG_INST = 'inst'
MSG_LAUNCH = 'launch'
MSG_DEVEC = 'devec'


class InetQueue:
    """One tile's inet input queue: bounded, with a 1-cycle link delay."""

    __slots__ = ('capacity', 'hop_latency', '_q', 'stall_empty',
                 'stall_full_upstream', 'peak_depth', 'pushes')

    def __init__(self, capacity: int = 2, hop_latency: int = 1):
        self.capacity = capacity
        self.hop_latency = hop_latency
        self._q = deque()  # entries: (ready_cycle, kind, payload)
        self.stall_empty = 0
        self.stall_full_upstream = 0
        self.peak_depth = 0  # high-water mark, read by telemetry/reports
        self.pushes = 0  # lifetime messages accepted (observability)

    def __len__(self):
        return len(self._q)

    def can_accept(self) -> bool:
        return len(self._q) < self.capacity

    def push(self, now: int, kind: str, payload) -> None:
        if not self.can_accept():
            raise RuntimeError('inet queue overflow (sender must check)')
        self._q.append((now + self.hop_latency, kind, payload))
        self.pushes += 1
        if len(self._q) > self.peak_depth:
            self.peak_depth = len(self._q)

    def peek(self, now: int) -> Optional[Tuple[str, object]]:
        """Head message if it has traversed the link, else None."""
        if self._q and self._q[0][0] <= now:
            _, kind, payload = self._q[0]
            return kind, payload
        return None

    def pop(self, now: int) -> Tuple[str, object]:
        ready, kind, payload = self._q[0]
        if ready > now:
            raise RuntimeError('popping an in-flight inet message')
        self._q.popleft()
        return kind, payload

    def next_ready_cycle(self) -> Optional[int]:
        """Cycle at which the head message becomes visible (for wakeups)."""
        if self._q:
            return self._q[0][0]
        return None

    def clear(self) -> None:
        """Drop queued messages (tile handed to a new job)."""
        self._q.clear()
