"""Mesh network-on-chip geometry and latency model.

The paper's data NoC is a Garnet2.0 packet-switched mesh; we approximate it
with per-hop latency plus serialization at the contended endpoints (LLC bank
request/response ports).  Link-level contention inside the mesh is not
modeled — the paper's own sensitivity study (Figure 17c) finds the on-chip
network width is not critical, and endpoint serialization captures the
first-order effect of narrow networks.

Tiles are addressed row-major: core ``i`` sits at ``(i % W, i // W)``.  LLC
banks sit above row 0 and below row H-1, evenly spread across columns
(paper Section 3.1: "at the top and bottom of each mesh column, there is a
shared LLC").
"""

from __future__ import annotations

from typing import List, Tuple


def tile_coords(core_id: int, width: int) -> Tuple[int, int]:
    return core_id % width, core_id // width


def bank_coords(bank_id: int, num_banks: int, width: int,
                height: int) -> Tuple[int, int]:
    """Position of an LLC bank on the mesh perimeter."""
    top = (num_banks + 1) // 2
    if bank_id < top:
        col = bank_id * width // top
        return col, -1
    bot = num_banks - top
    col = (bank_id - top) * width // max(1, bot)
    return col, height


def route_xy(src: Tuple[int, int], dst: Tuple[int, int]) \
        -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """XY dimension-ordered route as a list of directed links.

    Matches the mesh's routing discipline (X first, then Y); used by the
    observability plane to charge traversals to individual links when
    building congestion heatmaps.  Pure geometry — the timing model
    never calls this.
    """
    links = []
    x, y = src
    step = 1 if dst[0] > x else -1
    while x != dst[0]:
        links.append(((x, y), (x + step, y)))
        x += step
    step = 1 if dst[1] > y else -1
    while y != dst[1]:
        links.append(((x, y), (x, y + step)))
        y += step
    return links


def hops_core_to_bank(core_id: int, bank_id: int, num_banks: int,
                      width: int, height: int) -> int:
    cx, cy = tile_coords(core_id, width)
    bx, by = bank_coords(bank_id, num_banks, width, height)
    return abs(cx - bx) + abs(cy - by)


def hops_core_to_core(a: int, b: int, width: int) -> int:
    ax, ay = tile_coords(a, width)
    bx, by = tile_coords(b, width)
    return abs(ax - bx) + abs(ay - by)


class NocModel:
    """Precomputed hop tables for one machine configuration."""

    def __init__(self, width: int, height: int, num_banks: int,
                 hop_latency: int = 1):
        self.width = width
        self.height = height
        self.num_banks = num_banks
        self.hop_latency = hop_latency
        ncores = width * height
        self._core_bank: List[List[int]] = [
            [hops_core_to_bank(c, b, num_banks, width, height)
             for b in range(num_banks)]
            for c in range(ncores)
        ]

    def bank_hops(self, core_id: int, bank_id: int) -> int:
        return self._core_bank[core_id][bank_id]

    def delay_for_hops(self, hops: int) -> int:
        """One-way latency of a ``hops``-hop traversal (plus injection).

        Shared by the request path, the response path, and remote stores
        so the telemetry's NoC-traversal histogram sees the same numbers
        the timing model charges.
        """
        return hops * self.hop_latency + 1

    def bank_delay(self, core_id: int, bank_id: int) -> int:
        """One-way latency core <-> bank (hops plus injection)."""
        return self.delay_for_hops(self._core_bank[core_id][bank_id])

    def core_delay(self, a: int, b: int) -> int:
        return self.delay_for_hops(hops_core_to_core(a, b, self.width))

    def describe(self) -> dict:
        """Mesh geometry metadata for run reports and trace headers."""
        return {'width': self.width, 'height': self.height,
                'llc_banks': self.num_banks,
                'hop_latency': self.hop_latency}
