"""JSON experiment descriptions (paper artifact, Appendix A.7).

The original artifact drives gem5 sweeps from JSON files naming benchmarks,
software settings and hardware settings.  This module provides the same
interface against our simulator:

```json
{
  "name": "small",
  "benchmarks": ["bicg", "gemm"],
  "configs": ["NV", "NV_PF", "V4"],
  "scale": "bench",
  "machine": {"dram_bandwidth_words_per_cycle": 8.0},
  "metrics": ["cycles", "icache", "energy"]
}
```

Run with :func:`run_experiment` (or ``python -m repro experiment FILE``).
Results come back as a :class:`ExperimentResult` that renders a per-metric
table; every simulated point is verified against the numpy reference.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..kernels import registry
from ..manycore import DEFAULT_CONFIG, MachineConfig
from .figures import ResultCache, Series

VALID_METRICS = ('cycles', 'speedup', 'icache', 'energy', 'instrs',
                 'miss_rate')


@dataclass
class ExperimentSpec:
    """A parsed experiment description."""

    name: str
    benchmarks: List[str]
    configs: List[str]
    scale: str = 'bench'
    machine: Dict[str, object] = field(default_factory=dict)
    metrics: List[str] = field(default_factory=lambda: ['cycles'])
    verify: bool = True

    @classmethod
    def from_dict(cls, d: Dict) -> 'ExperimentSpec':
        unknown = set(d) - {'name', 'benchmarks', 'configs', 'scale',
                            'machine', 'metrics', 'verify'}
        if unknown:
            raise ValueError(f'unknown experiment keys: {sorted(unknown)}')
        spec = cls(
            name=d.get('name', 'experiment'),
            benchmarks=list(d.get('benchmarks', [])) or
            [c.name for c in registry.POLYBENCH],
            configs=list(d.get('configs', ['NV', 'NV_PF', 'V4'])),
            scale=d.get('scale', 'bench'),
            machine=dict(d.get('machine', {})),
            metrics=list(d.get('metrics', ['cycles'])),
            verify=bool(d.get('verify', True)),
        )
        for b in spec.benchmarks:
            if b not in registry.BY_NAME:
                raise ValueError(f'unknown benchmark {b!r}')
        for m in spec.metrics:
            if m not in VALID_METRICS:
                raise ValueError(f'unknown metric {m!r} '
                                 f'(valid: {VALID_METRICS})')
        return spec

    @classmethod
    def load(cls, path: Union[str, Path]) -> 'ExperimentSpec':
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def machine_config(self) -> Optional[MachineConfig]:
        if not self.machine:
            return None
        return DEFAULT_CONFIG.scaled(**self.machine)


@dataclass
class ExperimentResult:
    spec: ExperimentSpec
    tables: Dict[str, Series]

    def render(self) -> str:
        parts = [f'experiment: {self.spec.name} '
                 f'(scale={self.spec.scale}, machine overrides='
                 f'{self.spec.machine or "none"})']
        for metric in self.spec.metrics:
            parts.append('')
            parts.append(self.tables[metric].render())
        return '\n'.join(parts)


def _metric_value(result, metric: str, baseline):
    if metric == 'cycles':
        return float(result.cycles)
    if metric == 'speedup':
        return baseline.cycles / result.cycles
    if metric == 'icache':
        return float(result.icache_accesses)
    if metric == 'instrs':
        return float(result.instrs)
    if metric == 'energy':
        return result.energy.on_chip_total if result.energy else 0.0
    if metric == 'miss_rate':
        return result.stats.mem.miss_rate
    raise ValueError(metric)


def run_experiment(spec: Union[ExperimentSpec, Dict, str, Path],
                   cache: Optional[ResultCache] = None,
                   jobs: int = 1, store=None,
                   progress=None) -> ExperimentResult:
    """Execute an experiment spec; returns per-metric result tables.

    ``jobs > 1`` farms the (benchmark x config) points across a
    :class:`repro.jobs.SweepEngine` worker pool first and then fills the
    tables from the primed cache — results are bit-identical to the
    serial path because workers run the very same ``run_job``.  ``store``
    (a :class:`repro.jobs.ResultStore`) persists results across runs.
    """
    if isinstance(spec, (str, Path)):
        spec = ExperimentSpec.load(spec)
    elif isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    cache = cache or ResultCache(scale=spec.scale, verify=spec.verify,
                                 store=store)
    machine = spec.machine_config()

    if jobs and jobs > 1:
        from ..jobs import JobSpec, SweepEngine
        points = [JobSpec.make(b, cfg, scale=spec.scale, verify=spec.verify,
                               machine=machine)
                  for b in spec.benchmarks for cfg in spec.configs]
        engine = SweepEngine(jobs=jobs, store=cache.store,
                             progress=progress)
        for outcome in engine.execute(points):
            if outcome.result is not None:
                cache.prime(outcome.spec, outcome.result)
        # failed points (if any) re-raise naturally in the serial fill
        # below, with the same exception the worker saw.

    tables: Dict[str, Series] = {}
    fmt = {'cycles': '{:.0f}', 'icache': '{:.0f}', 'instrs': '{:.0f}',
           'energy': '{:.3e}', 'speedup': '{:.2f}', 'miss_rate': '{:.3f}'}
    for metric in spec.metrics:
        tables[metric] = Series(
            f'{spec.name}: {metric}', list(spec.configs),
            mean_kind='geomean' if metric == 'speedup' else 'amean',
            value_format=fmt.get(metric, '{:.2f}'))

    for b in spec.benchmarks:
        baseline = None
        for cfg in spec.configs:
            r = cache.run(b, cfg, machine=machine)
            if baseline is None:
                baseline = r
            for metric in spec.metrics:
                tables[metric].add(b, cfg, _metric_value(r, metric,
                                                         baseline))
    return ExperimentResult(spec, tables)
