"""The fleet front-end: admission, routing, dispatch, fault recovery.

The router advances a **global clock in epochs** of ``epoch_cycles``
simulated cycles.  At each boundary it (in order) collects finished
shard batches, lets the autoscaler resize the fleet, admits newly
arrived requests from the (possibly streaming) trace, routes the queue
onto shards, and dispatches every idle shard's backlog as one
:class:`~repro.fleet.shard.ShardBatch` through the worker pool.  A
shard is busy from its dispatch boundary until the first boundary at or
after ``dispatch + batch makespan`` — in-shard timelines stay exact
(the serve scheduler's cycle-level record), the fleet quantizes only
*hand-off* points, and every request's global latency decomposes as
``router_wait + in-shard latency`` with the router wait folded into the
``queue`` phase so the breakdown still sums exactly to latency.

Routing is **join-shortest-queue with request affinity**: a request
whose job key (kernel + params) was last served by a live shard sticks
to that shard when its backlog has room, otherwise the shortest backlog
wins (ties to the lowest shard id).  Backpressure is two-level: a shard
whose backlog is at ``shard_queue_cap`` takes no new requests (the
router queue absorbs the wait), and when the router queue itself is at
``max_queue``, *admission control* rejects new arrivals outright —
an over-committed fleet says no at the front door instead of
accumulating unbounded latency.

Fault tolerance: an injected (or real) worker death surfaces as a
``crashed`` batch outcome; the shard is marked dead, its batch's and
backlog's requests re-enter the router queue (``attempts`` bumped,
capped by ``max_reroutes``), and a replacement shard spawns to restore
the fleet floor.  Because co-scheduled kernels are bit-identical to
isolated runs, the re-executed requests must reproduce the exact
output digests of a crash-free fleet — tests enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..jobs.engine import CRASHED, DONE as JOB_DONE_STATUS
from ..observe import MetricsRegistry
from ..serve import DONE, KernelRequest
from .autoscaler import Autoscaler
from .shard import ACTIVE, DEAD, DRAINING, RETIRED, ShardBatch, ShardPool


@dataclass
class FleetConfig:
    """Fleet shape and routing knobs (autoscale policy rides separately)."""

    shards: int = 3              # initial fleet size
    epoch_cycles: int = 50_000   # hand-off quantum (simulated cycles)
    shard_queue_cap: int = 8     # per-shard backlog cap (backpressure)
    max_queue: int = 256         # router queue cap (admission control)
    affinity: bool = True        # job-key stickiness on top of JSQ
    verify: bool = True          # in-shard numpy verification
    digests: bool = True         # per-request output digests
    workers: int = 4             # concurrent worker processes
    timeout: Optional[float] = None  # wall-clock per batch (seconds)
    max_reroutes: int = 2        # re-executions after shard crashes
    max_epochs: int = 100_000    # runaway guard
    mp_context: Optional[str] = None
    #: fault injection: (shard_id, epoch) pairs; the named shard's first
    #: batch dispatched at or after that epoch is killed mid-run
    crashes: Tuple[Tuple[int, int], ...] = ()


@dataclass
class ShardState:
    """Router-side view of one shard."""

    shard_id: int
    state: str = ACTIVE
    born_epoch: int = 0
    backlog: List['FleetEntry'] = field(default_factory=list)
    busy: Optional[dict] = None      # in-flight dispatch info
    busy_until: Optional[int] = None
    batches: int = 0
    served: int = 0
    crashed_epoch: Optional[int] = None
    retired_epoch: Optional[int] = None

    @property
    def routable(self) -> bool:
        return self.state == ACTIVE

    @property
    def idle(self) -> bool:
        return self.busy is None


class FleetEntry:
    """One request's journey through the fleet (router bookkeeping)."""

    __slots__ = ('req', 'state', 'attempts', 'shard', 'epoch',
                 'dispatched_at', 'record', 'digest', 'rerouted')

    def __init__(self, req: KernelRequest):
        self.req = req
        self.state = 'queued'
        self.attempts = 0
        self.shard: Optional[int] = None
        self.epoch: Optional[int] = None
        self.dispatched_at: Optional[int] = None
        self.record: Optional[dict] = None
        self.digest: Optional[str] = None
        self.rerouted = 0

    @property
    def job_key(self) -> tuple:
        p = self.req.params
        return (self.req.kernel, tuple(sorted(p.items())))


@dataclass
class FleetResult:
    """Everything one fleet run produced (input to the fleet report)."""

    entries: List[FleetEntry]
    shards: List[ShardState]
    events: List[dict]            # autoscale + crash-replacement events
    epochs: int
    final_cycle: int
    epoch_cycles: int
    initial_shards: int
    peak_shards: int
    batches: int
    crashes: int
    rerouted: int
    rejected_admission: int
    peak_queue_depth: int
    affinity_hits: int
    stats_docs: List[dict]        # per-batch merged RunStats (dict form)
    batch_busy: List[Tuple[int, int, float]]  # (makespan, tiles, util)
    metrics: MetricsRegistry
    epoch_log: List[dict]

    @property
    def completed(self) -> List[FleetEntry]:
        return [e for e in self.entries if e.state == DONE]


class FleetRouter:
    """Drives a sharded fleet over an open-loop request trace."""

    def __init__(self, config: FleetConfig,
                 autoscaler: Optional[Autoscaler] = None,
                 pool: Optional[ShardPool] = None,
                 flight=None):
        self.cfg = config
        self.autoscaler = autoscaler
        #: optional repro.flight.FleetFlight collector; every hook call
        #: below is None-guarded so the default path costs one check
        self.flight = flight
        self.pool = pool if pool is not None else ShardPool(
            workers=config.workers, timeout=config.timeout,
            mp_context=config.mp_context)
        self.shards: Dict[int, ShardState] = {}
        self._next_shard_id = 0
        for _ in range(max(1, config.shards)):
            self._spawn_shard(epoch=0)
        self.queue: List[FleetEntry] = []
        self.entries: List[FleetEntry] = []
        self.events: List[dict] = []
        self._affinity: Dict[tuple, int] = {}
        self._pending_crashes = {(s, e) for s, e in config.crashes}
        self.stats_docs: List[dict] = []
        self.batch_busy: List[Tuple[int, int, float]] = []
        self.rerouted = 0
        self.rejected_admission = 0
        self.peak_queue_depth = 0
        self.affinity_hits = 0
        self.batches = 0
        self.crashes = 0
        self.epoch_log: List[dict] = []
        m = self.metrics = MetricsRegistry()
        m.counter('fleet_requests_submitted', 'requests entering admission')
        m.counter('fleet_requests_completed', 'requests finished done')
        m.counter('fleet_requests_rejected', 'admission-control rejections')
        m.counter('fleet_requests_rerouted',
                  're-queued after a shard crash')
        m.counter('fleet_batches_dispatched', 'shard busy periods')
        m.counter('fleet_shard_crashes', 'worker deaths observed')
        m.counter('fleet_affinity_hits', 'requests routed by job affinity')
        m.gauge('fleet_shards_active', 'routable shards')
        m.gauge('fleet_queue_depth', 'router queue occupancy')
        m.histogram('fleet_latency', 'global request latency', 'cycles')
        m.histogram('fleet_router_wait', 'cycles waiting in the router',
                    'cycles')

    # --------------------------------------------------------------- fleet ops
    def _spawn_shard(self, epoch: int) -> ShardState:
        sh = ShardState(shard_id=self._next_shard_id, born_epoch=epoch)
        self._next_shard_id += 1
        self.shards[sh.shard_id] = sh
        return sh

    def _active(self) -> List[ShardState]:
        return [s for s in self.shards.values() if s.state == ACTIVE]

    def _live(self) -> List[ShardState]:
        return [s for s in self.shards.values()
                if s.state in (ACTIVE, DRAINING)]

    # ---------------------------------------------------------------- the run
    def run(self, trace: Iterable[KernelRequest]) -> FleetResult:
        """Route a (lazily consumed) trace to completion."""
        cfg = self.cfg
        stream = iter(trace)
        pending_arrival: Optional[KernelRequest] = next(stream, None)
        epoch = 0
        final_cycle = 0
        peak_shards = len(self._live())
        while True:
            t = epoch * cfg.epoch_cycles
            self._collect_completions(t, epoch)
            self._autoscale(epoch)
            pending_arrival, exhausted = self._admit(
                stream, pending_arrival, t)
            self._route(epoch)
            dispatched = self._dispatch(t, epoch)
            peak_shards = max(peak_shards, len(self._live()))
            final_cycle = t
            busy = [s for s in self._live() if not s.idle]
            if (exhausted and not self.queue and not busy
                    and not any(s.backlog for s in self._live())):
                break
            if epoch >= cfg.max_epochs:
                self._strand_remaining(t)
                break
            self._log_epoch(epoch, t, dispatched)
            epoch += 1
        self._log_epoch(epoch, final_cycle, 0)
        if self.flight is not None:
            self.flight.finalize(self.entries, final_cycle)
        return FleetResult(
            entries=self.entries, shards=sorted(
                self.shards.values(), key=lambda s: s.shard_id),
            events=self.events, epochs=epoch, final_cycle=final_cycle,
            epoch_cycles=cfg.epoch_cycles, initial_shards=cfg.shards,
            peak_shards=peak_shards,
            batches=self.batches, crashes=self.crashes,
            rerouted=self.rerouted,
            rejected_admission=self.rejected_admission,
            peak_queue_depth=self.peak_queue_depth,
            affinity_hits=self.affinity_hits, stats_docs=self.stats_docs,
            batch_busy=self.batch_busy, metrics=self.metrics,
            epoch_log=self.epoch_log)

    # ------------------------------------------------------------ completions
    def _collect_completions(self, t: int, epoch: int) -> None:
        for sh in list(self.shards.values()):
            if sh.busy is None or sh.busy_until is None \
                    or sh.busy_until > t:
                continue
            info = sh.busy
            sh.busy = None
            sh.busy_until = None
            outcome = info['outcome']
            if outcome.status == CRASHED:
                self._on_shard_crash(sh, info, epoch)
                continue
            if outcome.status != JOB_DONE_STATUS:
                # deterministic worker failure (bug, not crash): the
                # requests are terminally failed — re-running the same
                # deterministic job cannot succeed
                for entry in info['entries']:
                    self._finalize_error(
                        entry, t, f'shard batch {outcome.status}: '
                                  f'{outcome.error.strip()[-200:]}')
                continue
            self._absorb_batch(sh, info, outcome.result, epoch)
            if sh.state == DRAINING and not sh.backlog:
                sh.state = RETIRED
                sh.retired_epoch = epoch

    def _absorb_batch(self, sh: ShardState, info: dict, doc: dict,
                      epoch: int) -> None:
        """Fold a finished batch's serve report into global records."""
        if self.flight is not None:
            self.flight.on_batch_done(sh, info, doc, epoch)
        dispatch = info['dispatched_at']
        by_id = {e.req.req_id: e for e in info['entries']}
        if doc.get('stats'):
            self.stats_docs.append(doc['stats'])
        report = doc['report']
        makespan = doc['makespan']
        tiles = doc.get('num_tiles', 0)
        util = report['summary'].get('tile_utilization', 0.0)
        self.batch_busy.append((makespan, tiles, util))
        if self.autoscaler is not None:
            self.autoscaler.observe_utilization(epoch, util)
        for rec in report['requests']:
            entry = by_id[rec['req_id']]
            router_wait = dispatch - entry.req.arrival
            record = dict(rec)
            record['shard'] = sh.shard_id
            record['epoch'] = info['epoch']
            record['attempts'] = entry.attempts
            record['router_wait'] = router_wait
            record['arrival'] = entry.req.arrival
            if 'launched_at' in rec:
                record['launched_at'] = dispatch + rec['launched_at']
                record['queue_wait'] = (router_wait
                                        + rec.get('queue_wait', 0))
            if 'finished_at' in rec:
                record['finished_at'] = dispatch + rec['finished_at']
                record['latency'] = router_wait + rec.get('latency', 0)
            if rec.get('breakdown') is not None:
                bd = dict(rec['breakdown'])
                # the router wait is queueing by another name; folding
                # it into the queue phase keeps the conservation
                # invariant at the *global* latency
                bd['queue'] = bd.get('queue', 0) + router_wait
                record['breakdown'] = bd
            digest = doc['digests'].get(str(rec['req_id']))
            entry.state = rec['state']
            entry.record = record
            entry.digest = digest
            if digest is not None:
                record['digest'] = digest
            if rec['state'] == DONE:
                sh.served += 1
                self.metrics.counter('fleet_requests_completed').inc()
                if record.get('latency') is not None:
                    self.metrics.histogram('fleet_latency').observe(
                        record['latency'])
                    if self.autoscaler is not None:
                        self.autoscaler.observe_completion(
                            epoch, record['latency'])
            self.metrics.histogram('fleet_router_wait').observe(
                router_wait)

    def _on_shard_crash(self, sh: ShardState, info: dict,
                        epoch: int) -> None:
        """Re-route a dead shard's in-flight and backlogged requests."""
        sh.state = DEAD
        sh.crashed_epoch = epoch
        self.crashes += 1
        self.metrics.counter('fleet_shard_crashes').inc()
        backlog = sh.backlog
        orphans = info['entries'] + backlog
        sh.backlog = []
        t = epoch * self.cfg.epoch_cycles
        if self.flight is not None:
            self.flight.on_crash(sh, info['entries'], backlog, t, epoch)
        for entry in orphans:
            if entry.attempts > self.cfg.max_reroutes:
                if self.flight is not None:
                    self.flight.on_reroute_exhausted(entry, sh, t)
                self._finalize_error(
                    entry, t,
                    f'shard {sh.shard_id} crashed; request exceeded '
                    f'{self.cfg.max_reroutes} re-route(s)')
                continue
            entry.state = 'queued'
            entry.shard = None
            entry.rerouted += 1
            self.rerouted += 1
            self.metrics.counter('fleet_requests_rerouted').inc()
            if self.flight is not None:
                self.flight.on_reroute(entry, sh, t)
            self.queue.append(entry)
        # restore the fleet floor so the survivors aren't permanently
        # down a shard
        floor = (self.autoscaler.policy.min_shards
                 if self.autoscaler is not None else self.cfg.shards)
        if len(self._active()) < floor:
            replacement = self._spawn_shard(epoch)
            reason = (f'shard {sh.shard_id} crashed; spawned shard '
                      f'{replacement.shard_id} to restore the floor '
                      f'of {floor}')
            if self.autoscaler is not None:
                self.autoscaler.record_replace(
                    epoch, len(self._active()) - 1, reason)
                self.events.append(self.autoscaler.events[-1])
            else:
                self.events.append({
                    'epoch': epoch, 'action': 'replace',
                    'reason': reason,
                    'shards_before': len(self._active()) - 1,
                    'shards_after': len(self._active()),
                    'latency_p99': 0.0, 'tile_utilization': 0.0})
            if self.flight is not None:
                self.flight.on_replace(self.events[-1], t)
        # the post-mortem is dumped *after* the reroutes and the
        # replacement-spawn decision so the black box tells the whole
        # story: crash -> reroute -> replace, in ring order
        if self.flight is not None:
            self.flight.dump_postmortem(
                'crash',
                f'shard {sh.shard_id} worker died at epoch {epoch} '
                f'with {len(orphans)} request(s) in flight or queued',
                t)

    def _finalize_error(self, entry: FleetEntry, t: int,
                        error: str) -> None:
        entry.state = 'failed'
        entry.record = {
            'req_id': entry.req.req_id, 'kernel': entry.req.kernel,
            'params': dict(entry.req.params), 'lanes': entry.req.lanes,
            'groups': entry.req.groups,
            'tiles': entry.req.tiles_needed,
            'priority': entry.req.priority,
            'arrival': entry.req.arrival, 'state': 'failed',
            'attempts': entry.attempts, 'router_wait': 0,
            'finished_at': t, 'error': error}
        if entry.shard is not None:
            entry.record['shard'] = entry.shard

    # -------------------------------------------------------------- autoscale
    def _autoscale(self, epoch: int) -> None:
        if self.autoscaler is None:
            return
        action = self.autoscaler.decide(epoch, len(self._active()))
        if action is None:
            return
        self.events.append(self.autoscaler.events[-1])
        if self.flight is not None:
            self.flight.on_autoscale(self.events[-1],
                                     epoch * self.cfg.epoch_cycles)
        if action == 'up':
            self._spawn_shard(epoch)
        elif action == 'down':
            victims = self._active()
            # never drain the last routable shard; prefer an idle one
            # with the smallest backlog, newest first (LIFO shrink)
            if len(victims) <= 1:
                return
            victim = sorted(
                victims, key=lambda s: (not s.idle, len(s.backlog),
                                        -s.shard_id))[0]
            victim.state = DRAINING
            if victim.idle and not victim.backlog:
                victim.state = RETIRED
                victim.retired_epoch = epoch

    # -------------------------------------------------- admission and routing
    def _admit(self, stream, pending: Optional[KernelRequest],
               t: int) -> Tuple[Optional[KernelRequest], bool]:
        """Pull every request with ``arrival <= t`` off the stream."""
        cfg = self.cfg
        while pending is not None and pending.arrival <= t:
            entry = FleetEntry(pending)
            self.entries.append(entry)
            self.metrics.counter('fleet_requests_submitted').inc()
            if len(self.queue) >= cfg.max_queue:
                entry.state = 'rejected'
                entry.record = {
                    'req_id': pending.req_id, 'kernel': pending.kernel,
                    'params': dict(pending.params),
                    'lanes': pending.lanes, 'groups': pending.groups,
                    'tiles': pending.tiles_needed,
                    'priority': pending.priority,
                    'arrival': pending.arrival, 'state': 'rejected',
                    'attempts': 0, 'router_wait': 0, 'finished_at': t,
                    'error': (f'admission control: router queue at cap '
                              f'{cfg.max_queue}')}
                self.rejected_admission += 1
                self.metrics.counter('fleet_requests_rejected').inc()
                if self.flight is not None:
                    self.flight.on_reject(entry, t)
            else:
                self.queue.append(entry)
                if self.flight is not None:
                    self.flight.on_admit(entry, t)
            pending = next(stream, None)
        self.peak_queue_depth = max(self.peak_queue_depth,
                                    len(self.queue))
        self.metrics.gauge('fleet_queue_depth').set(len(self.queue))
        return pending, pending is None

    def _route(self, epoch: int) -> None:
        """JSQ + affinity: move queued entries onto shard backlogs."""
        cfg = self.cfg
        self.queue.sort(key=lambda e: (-e.req.priority, e.req.arrival,
                                       e.req.req_id))
        waiting: List[FleetEntry] = []
        for entry in self.queue:
            candidates = [s for s in self._active()
                          if len(s.backlog) < cfg.shard_queue_cap]
            if not candidates:
                waiting.append(entry)  # per-shard backpressure: wait
                continue
            target = None
            if cfg.affinity:
                home = self._affinity.get(entry.job_key)
                if home is not None:
                    sh = self.shards.get(home)
                    if sh is not None and sh in candidates:
                        target = sh
                        self.affinity_hits += 1
                        self.metrics.counter('fleet_affinity_hits').inc()
            if target is None:
                target = min(candidates,
                             key=lambda s: (len(s.backlog), s.shard_id))
            target.backlog.append(entry)
            entry.shard = target.shard_id
            if cfg.affinity:
                self._affinity[entry.job_key] = target.shard_id
        self.queue = waiting

    # ---------------------------------------------------------------- dispatch
    def _dispatch(self, t: int, epoch: int) -> int:
        """Launch every idle shard's backlog as one parallel batch."""
        cfg = self.cfg
        launches: List[Tuple[ShardState, ShardBatch, List[FleetEntry]]] = []
        for sh in sorted(self._live(), key=lambda s: s.shard_id):
            if not sh.idle or not sh.backlog:
                continue
            entries = sh.backlog
            sh.backlog = []
            crash = False
            for (cs, ce) in sorted(self._pending_crashes):
                if cs == sh.shard_id and epoch >= ce:
                    crash = True
                    self._pending_crashes.discard((cs, ce))
                    break
            for e in entries:
                e.attempts += 1
                e.epoch = epoch
                e.dispatched_at = t
            flight = self.flight
            batch = ShardBatch(
                shard_id=sh.shard_id, epoch=epoch,
                requests=tuple(
                    dict(e.req.to_dict(), arrival=0) for e in entries),
                verify=cfg.verify, digests=cfg.digests, crash=crash,
                flight=flight is not None,
                metrics_out=(
                    f'{flight.shard_metrics_dir}/shard{sh.shard_id}.jsonl'
                    if flight is not None
                    and flight.shard_metrics_dir else None),
                snapshot_interval=(flight.snapshot_interval
                                   if flight is not None else 5000))
            if flight is not None:
                flight.on_dispatch(sh, entries, t, epoch, crash)
            launches.append((sh, batch, entries))
        if not launches:
            return 0
        outcomes = self.pool.run_batches([b for _, b, _ in launches])
        for (sh, batch, entries), outcome in zip(launches, outcomes):
            self.batches += 1
            sh.batches += 1
            self.metrics.counter('fleet_batches_dispatched').inc()
            if outcome.status == JOB_DONE_STATUS:
                makespan = outcome.result['makespan']
            else:
                # a crashed/failed batch has no makespan; surface it at
                # the next boundary
                makespan = cfg.epoch_cycles
            sh.busy = {'outcome': outcome, 'entries': entries,
                       'dispatched_at': t, 'epoch': epoch}
            # busy until the first boundary at or after completion
            sh.busy_until = t + max(1, makespan)
        return len(launches)

    # ------------------------------------------------------------------ misc
    def _strand_remaining(self, t: int) -> None:
        for sh in self._live():
            if sh.busy is not None:
                for entry in sh.busy['entries']:
                    self._finalize_error(entry, t, 'fleet epoch limit')
                sh.busy = None
                sh.busy_until = None
            for entry in sh.backlog:
                self._finalize_error(entry, t, 'fleet epoch limit')
            sh.backlog = []
        for entry in self.queue:
            self._finalize_error(entry, t, 'fleet epoch limit')
        self.queue = []

    def _log_epoch(self, epoch: int, t: int, dispatched: int) -> None:
        self.metrics.gauge('fleet_shards_active').set(len(self._active()))
        self.epoch_log.append({
            'epoch': epoch, 'cycle': t, 'dispatched': dispatched,
            'queue_depth': len(self.queue),
            'shards_active': len(self._active()),
            'shards_draining': sum(
                1 for s in self.shards.values() if s.state == DRAINING),
            'metrics': self.metrics.snapshot()})
        if self.flight is not None:
            self.flight.on_epoch(self.epoch_log[-1])
