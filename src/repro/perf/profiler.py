"""Host-side self-profiler: where does the *simulator's* wall time go?

The simulated fabric became observable in PR 1/PR 4; this module makes
the simulator itself observable.  A :class:`HostProfiler` attaches to a
:class:`~repro.manycore.Fabric` and attributes host wall time to named
components of the event loop:

``tile_step``
    stepping runnable tiles (instruction issue, the main cost),
``llc`` / ``dram``
    memory-system event callbacks (bank serves, line fills, op drains),
``frames``
    wide-access/DAE frame chunk deliveries into scratchpads,
``inet``
    core-to-core remote-store deliveries,
``barrier``
    global-barrier memory-fence rechecks,
``serve``
    serving-scheduler callbacks (arrivals, timeouts),
``sched``
    the clock advance itself (next-wake scan, event-heap peek),
``telemetry`` / ``observe``
    sampler and observability-plane snapshot overhead,
``drain`` / ``finish``
    end-of-run event flush and stats/telemetry finalization.

Design constraints, in order:

1. **Zero overhead when disabled.**  The fabric holds
   ``fabric.profiler = None``; the only cost on the normal path is one
   ``is None`` check at ``run()`` entry.  The unprofiled event loop is
   byte-for-byte the code that ran before this module existed, so
   disabled-mode simulation results are bit-identical (guarded by
   test).
2. **Attribution, not sampling.**  The profiled loop brackets every
   segment with ``perf_counter()`` and *shares boundaries* between
   consecutive segments, so the sum of components covers the loop
   almost exactly; the residual (timer overhead + loop bookkeeping) is
   computed, reported, and asserted small (< 10%) by test.
3. **Identical simulation.**  The profiled loop is a timing-annotated
   copy of ``Fabric._run_loop``; a tier-1 test runs both and asserts
   bit-identical cycle counts and outputs, so the copies cannot drift
   silently.

``deep=True`` additionally wraps the run in :mod:`cProfile` for a
per-function "top N" table (at real profiler cost — use it to dig, not
to gate).  :meth:`HostProfiler.write_collapsed` emits the component
tree as collapsed stacks (``repro;run;llc 12345`` microsecond lines)
loadable by any flamegraph tool (flamegraph.pl, speedscope, inferno).
"""

from __future__ import annotations

import io
from time import perf_counter
from typing import Dict, Optional

#: components attributed inside the run loop, in render order
LOOP_COMPONENTS = ('tile_step', 'llc', 'dram', 'frames', 'inet', 'barrier',
                   'serve', 'sched', 'telemetry', 'observe', 'events',
                   'drain', 'finish')

_INF = 1 << 60


class ProfileScope:
    """Context manager crediting its elapsed wall time to one component."""

    __slots__ = ('profiler', 'name', '_t0')

    def __init__(self, profiler: 'HostProfiler', name: str):
        self.profiler = profiler
        self.name = name

    def __enter__(self):
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc):
        self.profiler.add(self.name, perf_counter() - self._t0)
        return False


class HostProfiler:
    """Attributes the simulator's host wall time to named components.

    Usage::

        prof = HostProfiler()
        prof.attach(fabric)          # fabric.run() now uses the profiled loop
        fabric.load_program(prog)
        fabric.run()
        print(prof.render())         # per-component table + residual
        prof.write_collapsed('run.folded')   # flamegraph input
    """

    def __init__(self, deep: bool = False):
        self.seconds: Dict[str, float] = {}
        self.total = 0.0  # wall seconds measured around run()+finish
        self.deep = deep
        self._cprofile = None
        self._fn_cache: Dict[object, str] = {}  # code object -> component

    # ------------------------------------------------------------- lifecycle
    def attach(self, fabric) -> 'HostProfiler':
        fabric.profiler = self
        return self

    def detach(self, fabric) -> None:
        if fabric.profiler is self:
            fabric.profiler = None

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def scope(self, name: str) -> ProfileScope:
        """Scoped timer for phases outside the run loop (setup, verify)."""
        return ProfileScope(self, name)

    # ----------------------------------------------------------- derived data
    def attributed(self) -> float:
        """Seconds credited to run-loop components (excludes harness
        scopes like ``setup``/``verify``, which lie outside ``total``)."""
        return sum(self.seconds.get(c, 0.0) for c in LOOP_COMPONENTS)

    def residual(self) -> float:
        """Measured-but-unattributed wall time (timer + loop overhead)."""
        return max(0.0, self.total - self.attributed())

    def coverage(self) -> float:
        """Fraction of measured run time attributed to named components."""
        if self.total <= 0.0:
            return 1.0
        return min(1.0, self.attributed() / self.total)

    # -------------------------------------------------------------- profiled run
    def run(self, fabric, max_cycles: int, serve: bool):
        """Profiled replacement for ``Fabric.run``/``run_serve``."""
        if self.deep and self._cprofile is None:
            import cProfile
            self._cprofile = cProfile.Profile()
        t_start = perf_counter()
        if self._cprofile is not None:
            self._cprofile.enable()
        try:
            self._loop(fabric, max_cycles, serve)
            t0 = perf_counter()
            fabric._drain()
            t1 = perf_counter()
            self.add('drain', t1 - t0)
            fabric.run_stats.cycles = fabric.cycle
            for t in fabric.tiles:
                t.stats.cycles = fabric.cycle + 1
            if fabric.telemetry is not None:
                fabric.telemetry.finalize(fabric.cycle)
            if fabric.observe is not None:
                fabric.observe.finalize(fabric.cycle)
            self.add('finish', perf_counter() - t1)
        finally:
            if self._cprofile is not None:
                self._cprofile.disable()
            self.total += perf_counter() - t_start
        return fabric.run_stats

    def _loop(self, fabric, max_cycles: int, serve: bool) -> None:
        """Timing-annotated copy of ``Fabric._run_loop``.

        Kept line-for-line parallel with the original (same wake/event
        ordering, same sampler/observe scheduling); consecutive segments
        share ``perf_counter()`` boundaries so coverage stays near 100%.
        """
        acc = self.seconds
        classify = self._classify
        pc = perf_counter
        import heapq
        from ..manycore.fabric import (_SCHED_TO_HEAP as _TO_HEAP,
                                       _SCHED_TO_SCAN as _TO_SCAN)
        heappop = heapq.heappop
        heappush = heapq.heappush

        tel = fabric.telemetry
        sampler = None
        next_sample = _INF
        if tel is not None:
            tel.attach(fabric)
            sampler = tel.sampler
            if sampler is not None:
                next_sample = sampler.next_due
        obs = fabric.observe
        next_obs = _INF
        if obs is not None:
            obs.bind(fabric)
            if obs.interval:
                next_obs = obs.next_due
        heap = fabric._heap
        wheap = fabric._wake_heap
        active = [t for t in fabric._active if not t.halted]
        fabric._active_dirty = False
        heap_mode = False
        fabric._sched_heap_mode = False
        streak = 0
        while True:
            t0 = pc()
            if fabric._active_dirty:
                active = [t for t in fabric._active if not t.halted]
                fabric._active_dirty = False
                if heap_mode:
                    fabric._rebuild_wake_heap(active)
            elif heap_mode and len(wheap) > (len(active) << 2) + 64:
                fabric._rebuild_wake_heap(active)
            if not active and not (serve and fabric._pending_events):
                acc['sched'] = acc.get('sched', 0.0) + pc() - t0
                break
            if heap_mode:
                while wheap and (wheap[0][2] != wheap[0][3]._wake_entry
                                 or wheap[0][3].halted):
                    heappop(wheap)
                now = wheap[0][0] if wheap else _INF
            else:
                now = min(t.next_wake for t in active) if active else _INF
            head = fabric._peek_live()
            if head is not None and head < now:
                now = head
            if now >= _INF:
                if head is not None:
                    now = head
                elif (serve and fabric._stall_handler is not None
                        and fabric._stall_handler(fabric.cycle)):
                    acc['serve'] = acc.get('serve', 0.0) + pc() - t0
                    continue  # the handler freed a wedged job
                else:
                    fabric._deadlock()
            if now > max_cycles:
                acc['sched'] = acc.get('sched', 0.0) + pc() - t0
                from ..manycore.fabric import SimulationTimeout
                raise SimulationTimeout(
                    f'exceeded {max_cycles} cycles at cycle {fabric.cycle}')
            fabric.cycle = now
            t1 = pc()
            acc['sched'] = acc.get('sched', 0.0) + t1 - t0
            if now >= next_sample:
                sampler.take(now)
                next_sample = sampler.next_due
                t = pc()
                acc['telemetry'] = acc.get('telemetry', 0.0) + t - t1
                t1 = t
            if now >= next_obs:
                obs.take(now)
                next_obs = obs.next_due
                t = pc()
                acc['observe'] = acc.get('observe', 0.0) + t - t1
                t1 = t
            pending = fabric._pending_events
            while heap and heap[0][0] <= now:
                _, seq, fn = heappop(heap)
                if seq in pending:
                    pending.discard(seq)
                    fn(now)
                    t = pc()
                    comp = classify(fn)
                    acc[comp] = acc.get(comp, 0.0) + t - t1
                    t1 = t
            n = len(active)
            s = 0
            if heap_mode:
                epoch = fabric._wake_epoch
                due = []
                while wheap and wheap[0][0] <= now:
                    _, order, c, t = heappop(wheap)
                    if (c == t._wake_entry and not t.halted
                            and t._wake_epoch == epoch):
                        due.append((order, t))
                due.sort()
                t = pc()
                acc['sched'] = acc.get('sched', 0.0) + t - t1
                t1 = t
                for order, t in due:
                    if t.halted or t.next_wake > now:
                        continue
                    nw = t.step(now)
                    t.next_wake = nw = nw if nw > now else now + 1
                    fabric._wake_counter = c = fabric._wake_counter + 1
                    t._wake_entry = c
                    if nw < _INF:
                        heappush(wheap, (nw, order, c, t))
                    s += 1
                if s << 2 >= n:
                    streak += 1
                    if streak >= _TO_SCAN:
                        heap_mode = False
                        fabric._sched_heap_mode = False
                        del wheap[:]
                        streak = 0
                else:
                    streak = 0
            else:
                t = pc()
                acc['sched'] = acc.get('sched', 0.0) + t - t1
                t1 = t
                for t in active:
                    if t.next_wake <= now and not t.halted:
                        nw = t.step(now)
                        t.next_wake = nw if nw > now else now + 1
                        s += 1
                if s << 3 <= n:
                    streak += 1
                    if streak >= _TO_HEAP:
                        heap_mode = True
                        fabric._sched_heap_mode = True
                        fabric._rebuild_wake_heap(active)
                        streak = 0
                else:
                    streak = 0
            acc['tile_step'] = acc.get('tile_step', 0.0) + pc() - t1
        fabric._sched_heap_mode = False

    # ---------------------------------------------------------- classification
    def _classify(self, fn) -> str:
        """Map an event callback to a component, cached per code object.

        Frame/wide chunk deliveries and remote stores both end in
        ``spad_deliver``; the defining module tells them apart (LLC bank
        responses vs the fabric's remote-store path).
        """
        f = getattr(fn, '__func__', fn)
        code = getattr(f, '__code__', None)
        if code is None:
            return 'events'
        comp = self._fn_cache.get(code)
        if comp is None:
            mod = getattr(f, '__module__', '') or ''
            names = code.co_names
            if mod.endswith('manycore.llc'):
                comp = 'frames' if 'spad_deliver' in names else 'llc'
            elif mod.endswith('manycore.dram'):
                comp = 'dram'
            elif mod.endswith('manycore.fabric'):
                if '_delivery_batches' in names:
                    comp = 'frames'  # coalesced LLC packet batches
                elif 'spad_deliver' in names:
                    comp = 'inet'
                else:
                    comp = 'barrier'
            elif '.serve' in mod:
                comp = 'serve'
            else:
                comp = 'events'
            self._fn_cache[code] = comp
        return comp

    # ----------------------------------------------------------------- export
    def to_dict(self) -> dict:
        """JSON-safe profile section (seconds, coverage, optional top-N)."""
        doc = {
            'total_seconds': self.total,
            'components': {k: v for k, v in sorted(
                self.seconds.items(), key=lambda kv: -kv[1])},
            'residual_seconds': self.residual(),
            'coverage': self.coverage(),
        }
        if self._cprofile is not None:
            doc['top_functions'] = self.top_functions()
        return doc

    def render(self, width: int = 40) -> str:
        """Human-readable per-component table with an explicit residual."""
        lines = [f'host-time attribution ({self.total:.3f}s measured, '
                 f'{self.coverage():.1%} attributed):']
        total = self.total or 1.0
        items = sorted(((k, v) for k, v in self.seconds.items()
                        if k in LOOP_COMPONENTS), key=lambda kv: -kv[1])
        for name, secs in items:
            share = secs / total
            bar = '#' * max(1, int(share * width)) if secs else ''
            lines.append(f'  {name:<10s} {secs:>8.3f}s {share:>6.1%}  {bar}')
        lines.append(f'  {"(residual)":<10s} {self.residual():>8.3f}s '
                     f'{self.residual() / total:>6.1%}')
        extra = [(k, v) for k, v in sorted(self.seconds.items())
                 if k not in LOOP_COMPONENTS]
        if extra:
            lines.append('outside the run loop:')
            for name, secs in extra:
                lines.append(f'  {name:<10s} {secs:>8.3f}s')
        return '\n'.join(lines)

    def collapsed_stacks(self) -> str:
        """Flamegraph-ready collapsed stacks, one ``frames value`` line
        per component (values in integer microseconds)."""
        lines = []
        for name, secs in sorted(self.seconds.items()):
            us = int(round(secs * 1e6))
            if not us:
                continue
            stack = f'repro;run;{name}' if name in LOOP_COMPONENTS \
                else f'repro;{name}'
            lines.append(f'{stack} {us}')
        us = int(round(self.residual() * 1e6))
        if us:
            lines.append(f'repro;run;(residual) {us}')
        return '\n'.join(lines) + '\n'

    def write_collapsed(self, path: str) -> None:
        with open(path, 'w') as f:
            f.write(self.collapsed_stacks())

    def top_functions(self, n: int = 15):
        """Top-N hot functions from deep (cProfile) mode, by cumulative
        time; empty when deep mode is off or the run has not happened."""
        if self._cprofile is None:
            return []
        import pstats
        st = pstats.Stats(self._cprofile, stream=io.StringIO())
        st.sort_stats('cumulative')
        rows = []
        for (filename, lineno, name), (cc, nc, tt, ct, _callers) in sorted(
                st.stats.items(), key=lambda kv: -kv[1][3])[:n]:
            rows.append({'function': f'{filename}:{lineno}({name})',
                         'calls': nc, 'tottime': round(tt, 6),
                         'cumtime': round(ct, 6)})
        return rows

    def render_top(self, n: int = 15) -> str:
        rows = self.top_functions(n)
        if not rows:
            return 'deep profile: not enabled'
        lines = [f'top {len(rows)} hot functions (cProfile, by cumulative '
                 f'time):',
                 f'  {"calls":>10s} {"tottime":>9s} {"cumtime":>9s}  '
                 f'function']
        for r in rows:
            fn = r['function']
            if len(fn) > 64:
                fn = '...' + fn[-61:]
            lines.append(f'  {r["calls"]:>10d} {r["tottime"]:>9.4f} '
                         f'{r["cumtime"]:>9.4f}  {fn}')
        return '\n'.join(lines)
