"""Unit tests: EWMA rolling-z-score anomaly detection."""

import pytest

from repro.flight import AnomalyDetector, feed_fleet_epoch


class TestAnomalyDetector:
    def test_spike_flags_steady_state_does_not(self):
        det = AnomalyDetector(alpha=0.3, z_threshold=3.0, min_samples=5)
        # a noisy-but-steady signal: no anomalies
        steady = [100, 102, 98, 101, 99, 100, 103, 97, 100, 101]
        for t, v in enumerate(steady):
            det.observe('latency_p99', v, t * 1000)
        assert det.anomalies == []
        # then a 10x spike
        ev = det.observe('latency_p99', 1000.0, 99_000)
        assert ev is not None
        assert ev['signal'] == 'latency_p99'
        assert ev['value'] == 1000.0
        assert ev['z'] > 3.0
        assert det.anomalies == [ev]

    def test_min_samples_gate(self):
        det = AnomalyDetector(min_samples=5)
        # the very same spike is NOT scored while history is too thin
        for t, v in enumerate([100, 100, 100, 100]):
            det.observe('queue_depth', v, t)
        assert det.observe('queue_depth', 10_000, 4) is None
        assert det.anomalies == []

    def test_flat_line_history_caps_z(self):
        # an idle queue is the canonical flat line: zero depth forever,
        # then the first backlog ever — std is exactly 0
        det = AnomalyDetector(z_threshold=3.0, min_samples=3)
        for t in range(6):
            assert det.observe('queue_depth', 0.0, t) is None
        ev = det.observe('queue_depth', 4.0, 6)
        assert ev is not None
        assert ev['z'] == 30.0  # capped at 10x threshold, not inf
        assert ev['std'] == 0.0

    def test_scores_against_pre_update_stats(self):
        # a spike must not hide inside the statistics it just inflated:
        # two consecutive equal spikes -> the first one still flags
        det = AnomalyDetector(alpha=0.3, z_threshold=3.0, min_samples=3)
        for t, v in enumerate([10, 11, 9, 10, 11, 9]):
            det.observe('s', v, t)
        assert det.observe('s', 500, 10) is not None

    def test_signals_are_independent(self):
        det = AnomalyDetector(min_samples=3)
        for t in range(6):
            det.observe('a', 1.0 + 0.01 * (t % 2), t)
            det.observe('b', 1000.0 * (t % 2), t)
        # 'a' spikes relative to its own quiet history; 'b' is used to
        # noisy swings, so the same magnitude does not flag there
        assert det.observe('a', 50.0, 10) is not None
        assert det.observe('b', 50.0, 10) is None

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            AnomalyDetector(alpha=0.0)
        with pytest.raises(ValueError):
            AnomalyDetector(alpha=1.5)


class TestFeedFleetEpoch:
    def _row(self, cycle, queue_depth=0, p99=None, count=0):
        metrics = {}
        if p99 is not None:
            metrics['fleet_latency'] = {'count': count, 'p99': p99}
        return {'cycle': cycle, 'queue_depth': queue_depth,
                'metrics': metrics}

    def test_feeds_router_signals(self):
        det = AnomalyDetector(min_samples=3, z_threshold=3.0)
        for i in range(8):
            evs = feed_fleet_epoch(
                det, self._row(i * 20_000, queue_depth=2,
                               p99=50_000 + 100 * (i % 2), count=4),
                utilization=0.6)
            assert evs == []
        evs = feed_fleet_epoch(
            det, self._row(200_000, queue_depth=40, p99=900_000,
                           count=10),
            utilization=0.6)
        flagged = {e['signal'] for e in evs}
        assert 'latency_p99' in flagged
        assert 'queue_depth' in flagged
        assert 'tile_utilization' not in flagged

    def test_empty_latency_histogram_skipped(self):
        det = AnomalyDetector(min_samples=1)
        feed_fleet_epoch(det, self._row(0, p99=0.0, count=0))
        assert det.state('latency_p99') is None
        assert det.state('queue_depth')['count'] == 1
