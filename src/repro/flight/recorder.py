"""Black-box flight recorder: a bounded ring of structured events.

Modeled on an aircraft flight data recorder: the router (and, in
synthesized form, each shard worker) continuously records the decisions
that matter for a post-mortem — admissions, rejections, dispatches,
crashes, re-routes, autoscaler actions with the signal values that
drove them, SLO warn/fail transitions, deadlock dumps, anomalies — into
a ``deque(maxlen=capacity)``.  Steady-state cost is O(capacity) memory
and O(1) per event; when something dies, the last N events *are* the
story, already ordered and already bounded.

Alongside the event ring, a smaller ring of recent metric snapshots
(the observe plane's counter/gauge/histogram dict) gives the
post-mortem quantitative context: what latency_p99 and queue depth
looked like in the epochs leading up to the trigger.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

#: event kinds the recorder understands (free-form data rides along)
EVENT_KINDS = (
    'admit',          # request accepted into the router queue
    'reject',         # admission control said no
    'dispatch',       # batch handed to a shard worker
    'batch_done',     # batch absorbed back into global records
    'crash',          # shard worker died
    'reroute',        # orphaned request re-queued after a crash
    'reroute_exhausted',  # orphan exceeded max_reroutes -> failed
    'replace',        # replacement shard spawned to restore the floor
    'autoscale',      # autoscaler up/down decision with signal values
    'slo_transition',  # SLO status changed (pass -> warn -> fail ...)
    'deadlock',       # DeadlockError + wait-state dump in a shard
    'anomaly',        # detector flagged a signal excursion
    'launch',         # shard-local: request launched onto the fabric
    'complete',       # shard-local: request reached a terminal state
)


class FlightRecorder:
    """Bounded ring buffer of structured events plus metric snapshots."""

    def __init__(self, capacity: int = 256, source: str = 'router',
                 snapshot_capacity: int = 16):
        if capacity < 1:
            raise ValueError('capacity must be >= 1')
        self.capacity = capacity
        self.source = source
        self._seq = 0
        self._dropped = 0
        self._ring: Deque[dict] = deque(maxlen=capacity)
        self._snapshots: Deque[dict] = deque(maxlen=snapshot_capacity)

    def record(self, kind: str, t: int, **data) -> dict:
        """Append one event; returns the stored record."""
        if kind not in EVENT_KINDS:
            raise ValueError(f'unknown event kind {kind!r}')
        ev = {'seq': self._seq, 'kind': kind, 't': int(t),
              'source': self.source}
        if data:
            ev.update(data)
        self._seq += 1
        if len(self._ring) == self.capacity:
            self._dropped += 1
        self._ring.append(ev)
        return ev

    def record_snapshot(self, t: int, metrics: dict) -> None:
        """Remember one observe-plane metrics snapshot for context."""
        self._snapshots.append({'t': int(t), 'metrics': metrics})

    def ingest(self, events: List[dict]) -> None:
        """Fold externally produced events (e.g. a shard worker's
        synthesized launch/complete records) into the ring, re-stamping
        sequence numbers so ring order stays total."""
        for ev in events:
            data = {k: v for k, v in ev.items()
                    if k not in ('seq', 'kind', 't', 'source')}
            if 'source' in ev:
                data['origin'] = ev['source']
            self.record(ev['kind'], ev.get('t', 0), **data)

    @property
    def seq(self) -> int:
        return self._seq

    @property
    def dropped(self) -> int:
        """Events that aged out of the ring (recorded - retained)."""
        return self._dropped

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """Ring contents, oldest first; optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e['kind'] == kind]

    def snapshots(self) -> List[dict]:
        return list(self._snapshots)

    def __len__(self) -> int:
        return len(self._ring)
