"""Vector group descriptors and fabric layout planning (paper Section 2.1).

A vector group is a contiguous region of tiles: one *scalar* core followed by
``lanes`` vector lanes, the first of which is the *expander*.  The cores on
the lane path must be mesh-adjacent so the static inet links work; we lay
groups out along a serpentine walk of the mesh, which guarantees adjacency
for any contiguous run of tiles.

The group descriptor stands in for the paper's ``vconfig`` CSR bitmask: in
hardware each core computes a bitmask describing the forwarding path and
frontend configuration; here the runner registers a descriptor with the
fabric and cores name it by handle when executing ``vconfig``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

# Core roles
ROLE_INDEPENDENT = 0
ROLE_SCALAR = 1
ROLE_EXPANDER = 2
ROLE_VECTOR = 3

ROLE_NAMES = {ROLE_INDEPENDENT: 'independent', ROLE_SCALAR: 'scalar',
              ROLE_EXPANDER: 'expander', ROLE_VECTOR: 'vector'}


@dataclass
class GroupDescriptor:
    """Static description of one vector group.

    ``tiles`` lists core ids in inet path order: ``tiles[0]`` is the scalar
    core, ``tiles[1]`` the expander, and the rest plain vector cores.
    """

    group_id: int
    tiles: List[int]
    frame_size: int = 16
    num_frame_slots: int = 8
    frame_base: int = 0

    # formation bookkeeping (reset per vconfig barrier)
    _arrived: set = field(default_factory=set, repr=False)

    @property
    def scalar(self) -> int:
        return self.tiles[0]

    @property
    def expander(self) -> int:
        return self.tiles[1]

    @property
    def lanes(self) -> List[int]:
        """The vector lanes (expander first)."""
        return self.tiles[1:]

    @property
    def num_lanes(self) -> int:
        return len(self.tiles) - 1

    def role_of(self, core_id: int) -> int:
        idx = self.tiles.index(core_id)
        if idx == 0:
            return ROLE_SCALAR
        if idx == 1:
            return ROLE_EXPANDER
        return ROLE_VECTOR

    def lane_index(self, core_id: int) -> int:
        """0-based lane id (expander is lane 0)."""
        return self.tiles.index(core_id) - 1

    def successor(self, core_id: int) -> int:
        """Next core on the inet path, or -1 at the tail."""
        idx = self.tiles.index(core_id)
        if idx + 1 < len(self.tiles):
            return self.tiles[idx + 1]
        return -1

    def hop_of(self, core_id: int) -> int:
        """Distance in inet hops from the scalar core (scalar = 0)."""
        return self.tiles.index(core_id)


def serpentine_order(width: int, height: int) -> List[int]:
    """Row-major serpentine walk: every consecutive pair is mesh-adjacent."""
    order = []
    for y in range(height):
        xs = range(width) if y % 2 == 0 else range(width - 1, -1, -1)
        for x in xs:
            order.append(y * width + x)
    return order


def plan_groups(width: int, height: int, lanes: int,
                max_groups: int = None) -> Tuple[List[GroupDescriptor],
                                                 List[int]]:
    """Pack as many (1 + lanes)-tile groups as fit along the serpentine.

    Returns ``(groups, idle_tiles)``.  Mirrors the paper's Section 6.2
    provisioning: V16 on 64 cores yields 3 groups of 17 (80% utilization),
    V4 yields 12 groups of 5 (94%).
    """
    order = serpentine_order(width, height)
    tiles_per_group = lanes + 1
    ngroups = len(order) // tiles_per_group
    if max_groups is not None:
        ngroups = min(ngroups, max_groups)
    groups = []
    for g in range(ngroups):
        chunk = order[g * tiles_per_group:(g + 1) * tiles_per_group]
        groups.append(GroupDescriptor(group_id=g, tiles=chunk))
    used = {t for g in groups for t in g.tiles}
    idle = [t for t in range(width * height) if t not in used]
    return groups, idle


def utilization(width: int, height: int, lanes: int) -> float:
    groups, idle = plan_groups(width, height, lanes)
    return 1.0 - len(idle) / (width * height)
